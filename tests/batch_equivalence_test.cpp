// Zoo-wide batch/loop equivalence: for every estimator, EstimateBatch() must
// be bit-identical to the per-query EstimateCardinality() loop, at one and at
// four threads. This is the contract the serving micro-batcher rests on —
// coalescing requests into one vectorized flush may change latency, never
// answers. Vectorized overrides (FCN, Linear, MSCN, FCN+Pool, RNN, LSTM,
// LW-XGB) inherit it from the kernel bit-identity contract (DESIGN.md §10);
// everyone else uses the default loop, which must also hold for estimators
// that advance internal Rng state per call.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/ce/factory.h"
#include "src/storage/datagen.h"
#include "src/util/parallel.h"
#include "src/workload/generator.h"

namespace lce {
namespace ce {
namespace {

struct ZooCase {
  std::string estimator;
  int db_index;  // 0 = DMV-like (single table), 1 = TPC-H-like (snowflake)
};

std::string CaseName(const ::testing::TestParamInfo<ZooCase>& info) {
  std::string name = info.param.estimator +
                     (info.param.db_index == 0 ? "_dmv" : "_tpch");
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

struct Env {
  std::unique_ptr<storage::Database> db;
  std::vector<query::LabeledQuery> train;
  std::vector<query::Query> test;
};

const Env& GetEnv(int index) {
  static Env* envs[2] = {nullptr, nullptr};
  if (envs[index] == nullptr) {
    auto* e = new Env();
    e->db = storage::datagen::Generate(
        index == 0
            ? storage::datagen::DmvLikeSpec(0.08)
            : storage::datagen::TpchLikeSpec(0.04),
        31 + index);
    workload::WorkloadOptions opts;
    opts.max_joins = index == 0 ? 0 : 2;
    workload::WorkloadGenerator gen(e->db.get(), opts);
    Rng rng(32);
    e->train = gen.GenerateLabeled(250, &rng);
    for (const auto& lq : gen.GenerateLabeled(40, &rng)) {
      e->test.push_back(lq.q);
    }
    envs[index] = e;
  }
  return *envs[index];
}

NeuralOptions Fast() {
  NeuralOptions o;
  o.epochs = 4;
  o.hidden_dim = 16;
  return o;
}

// Restores the default pool on scope exit so a failing case cannot leak a
// one-thread pool into the rest of the test binary.
struct ThreadCountGuard {
  ~ThreadCountGuard() { parallel::SetThreadCountForTesting(0); }
};

class BatchEquivalenceTest : public ::testing::TestWithParam<ZooCase> {};

TEST_P(BatchEquivalenceTest, BatchMatchesLoopBitwiseAtOneAndFourThreads) {
  const Env& env = GetEnv(GetParam().db_index);

  // Three identically-seeded instances: Rng-bearing estimators (samplers)
  // advance state per estimate, so the loop reference and each batch run
  // need their own instance with exactly one estimation pass.
  auto loop_inst = MakeEstimator(GetParam().estimator, Fast(), 11);
  auto batch1_inst = MakeEstimator(GetParam().estimator, Fast(), 11);
  auto batch4_inst = MakeEstimator(GetParam().estimator, Fast(), 11);
  ASSERT_TRUE(loop_inst->Build(*env.db, env.train).ok())
      << GetParam().estimator;
  ASSERT_TRUE(batch1_inst->Build(*env.db, env.train).ok());
  ASSERT_TRUE(batch4_inst->Build(*env.db, env.train).ok());

  std::vector<double> loop;
  loop.reserve(env.test.size());
  for (const query::Query& q : env.test) {
    loop.push_back(loop_inst->EstimateCardinality(q));
  }

  ThreadCountGuard guard;
  parallel::SetThreadCountForTesting(1);
  std::vector<double> batch1 = batch1_inst->EstimateBatch(env.test);
  parallel::SetThreadCountForTesting(4);
  std::vector<double> batch4 = batch4_inst->EstimateBatch(env.test);

  ASSERT_EQ(batch1.size(), env.test.size());
  ASSERT_EQ(batch4.size(), env.test.size());
  for (size_t i = 0; i < env.test.size(); ++i) {
    // Bitwise, not approximate: the serving path must be indistinguishable
    // from the per-query path.
    EXPECT_EQ(loop[i], batch1[i])
        << GetParam().estimator << " query " << i << " at 1 thread";
    EXPECT_EQ(loop[i], batch4[i])
        << GetParam().estimator << " query " << i << " at 4 threads";
  }
}

TEST_P(BatchEquivalenceTest, SingleElementBatchMatchesSingleCall) {
  const Env& env = GetEnv(GetParam().db_index);
  auto a = MakeEstimator(GetParam().estimator, Fast(), 17);
  auto b = MakeEstimator(GetParam().estimator, Fast(), 17);
  ASSERT_TRUE(a->Build(*env.db, env.train).ok()) << GetParam().estimator;
  ASSERT_TRUE(b->Build(*env.db, env.train).ok());
  const query::Query& q = env.test.front();
  std::vector<double> batch = b->EstimateBatch({q});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(a->EstimateCardinality(q), batch[0]) << GetParam().estimator;
}

std::vector<ZooCase> AllCases() {
  std::vector<ZooCase> cases;
  for (const std::string& name : AllEstimatorNames()) {
    cases.push_back({name, 0});
    cases.push_back({name, 1});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(EveryEstimatorEveryShape, BatchEquivalenceTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// The neural query-driven family must advertise its vectorized path — this
// is what routes it through the micro-batcher's one-flush fast lane and the
// accuracy harness's batched scoring.
TEST(BatchEquivalenceTest, NeuralFamilyAdvertisesVectorizedBatch) {
  for (const std::string& name : QueryDrivenNeuralNames()) {
    auto e = MakeEstimator(name, Fast(), 11);
    EXPECT_TRUE(e->HasBatchEstimate()) << name;
  }
}

}  // namespace
}  // namespace ce
}  // namespace lce
