#include "src/query/query.h"

#include <gtest/gtest.h>

#include "src/storage/datagen.h"

namespace lce {
namespace query {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.02), 1);
  }
  std::unique_ptr<storage::Database> db_;
};

Query TitleCompaniesQuery() {
  Query q;
  q.tables = {0, 1};  // title, movie_companies
  q.join_edges = {0};
  q.predicates = {{{0, 1}, 2, 5}};  // title.kind_id BETWEEN 2 AND 5
  return q;
}

TEST_F(QueryTest, ToSqlRendersJoinsAndPredicates) {
  std::string sql = ToSql(TitleCompaniesQuery(), db_->schema());
  EXPECT_NE(sql.find("SELECT COUNT(*) FROM title, movie_companies"),
            std::string::npos);
  EXPECT_NE(sql.find("title.id = movie_companies.movie_id"),
            std::string::npos);
  EXPECT_NE(sql.find("title.kind_id BETWEEN 2 AND 5"), std::string::npos);
}

TEST_F(QueryTest, ToSqlRendersEqualityAsEquals) {
  Query q;
  q.tables = {0};
  q.predicates = {{{0, 1}, 3, 3}};
  std::string sql = ToSql(q, db_->schema());
  EXPECT_NE(sql.find("title.kind_id = 3"), std::string::npos);
  EXPECT_EQ(sql.find("BETWEEN"), std::string::npos);
}

TEST_F(QueryTest, ValidateAcceptsWellFormedQuery) {
  EXPECT_TRUE(Validate(TitleCompaniesQuery(), *db_).ok());
}

TEST_F(QueryTest, ValidateRejectsEmptyTables) {
  Query q;
  EXPECT_FALSE(Validate(q, *db_).ok());
}

TEST_F(QueryTest, ValidateRejectsUnsortedTables) {
  Query q = TitleCompaniesQuery();
  std::swap(q.tables[0], q.tables[1]);
  EXPECT_FALSE(Validate(q, *db_).ok());
}

TEST_F(QueryTest, ValidateRejectsMissingJoinEdge) {
  Query q = TitleCompaniesQuery();
  q.join_edges.clear();
  EXPECT_FALSE(Validate(q, *db_).ok());
}

TEST_F(QueryTest, ValidateRejectsDisconnectedTables) {
  Query q;
  q.tables = {1, 2};  // movie_companies, movie_info: both FK to title only
  q.join_edges = {0};
  EXPECT_FALSE(Validate(q, *db_).ok());
}

TEST_F(QueryTest, ValidateRejectsInvertedRange) {
  Query q = TitleCompaniesQuery();
  q.predicates[0].lo = 10;
  q.predicates[0].hi = 2;
  EXPECT_FALSE(Validate(q, *db_).ok());
}

TEST_F(QueryTest, ValidateRejectsPredicateOnUnusedTable) {
  Query q = TitleCompaniesQuery();
  q.predicates.push_back({{3, 1}, 0, 1});  // movie_keyword not in query
  EXPECT_FALSE(Validate(q, *db_).ok());
}

TEST_F(QueryTest, JoinTemplateKeyIsOrderInsensitive) {
  Query a;
  a.tables = {0, 1, 2};
  a.join_edges = {0, 1};
  Query b = a;
  std::swap(b.join_edges[0], b.join_edges[1]);
  EXPECT_EQ(JoinTemplateKey(a), JoinTemplateKey(b));
  Query c = a;
  c.tables = {0, 1, 3};
  c.join_edges = {0, 2};
  EXPECT_NE(JoinTemplateKey(a), JoinTemplateKey(c));
}

TEST_F(QueryTest, RestrictKeepsInducedStructure) {
  Query q;
  q.tables = {0, 1, 2};
  q.join_edges = {0, 1};
  q.predicates = {{{0, 1}, 1, 3}, {{2, 1}, 0, 10}};
  Query sub = Restrict(q, {0, 1}, db_->schema());
  EXPECT_EQ(sub.tables, (std::vector<int>{0, 1}));
  EXPECT_EQ(sub.join_edges, (std::vector<int>{0}));
  ASSERT_EQ(sub.predicates.size(), 1u);
  EXPECT_EQ(sub.predicates[0].col.table, 0);
  EXPECT_TRUE(Validate(sub, *db_).ok());
}

TEST_F(QueryTest, RestrictToSingleTableDropsJoins) {
  Query q;
  q.tables = {0, 1};
  q.join_edges = {0};
  Query sub = Restrict(q, {1}, db_->schema());
  EXPECT_TRUE(sub.join_edges.empty());
  EXPECT_TRUE(Validate(sub, *db_).ok());
}

}  // namespace
}  // namespace query
}  // namespace lce
