#include "src/storage/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace lce {
namespace storage {
namespace {

TEST(CsvTest, ParsesNumericTable) {
  std::istringstream in("id,score\n1,10\n2,20\n3,30\n");
  Dictionary dict;
  CsvOptions opts;
  opts.key_columns = {"id"};
  auto result = ReadCsv(&in, "t", opts, &dict);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& t = result.value();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_TRUE(t.schema().columns[0].is_key);
  EXPECT_FALSE(t.schema().columns[1].is_key);
  EXPECT_EQ(t.column(1), (std::vector<Value>{10, 20, 30}));
  EXPECT_TRUE(t.finalized());
  EXPECT_EQ(dict.size(), 0u);
}

TEST(CsvTest, DictionaryEncodesStrings) {
  std::istringstream in("genre,year\ndrama,1990\ncomedy,2000\ndrama,2010\n");
  Dictionary dict;
  auto result = ReadCsv(&in, "movies", CsvOptions{}, &dict);
  ASSERT_TRUE(result.ok());
  const Table& t = result.value();
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(t.column(0)[0], t.column(0)[2]);  // both "drama"
  EXPECT_NE(t.column(0)[0], t.column(0)[1]);
  ASSERT_TRUE(dict.Decode(t.column(0)[1]).ok());
  EXPECT_EQ(dict.Decode(t.column(0)[1]).value(), "comedy");
}

TEST(CsvTest, RejectsRaggedRows) {
  std::istringstream in("a,b\n1,2\n3\n");
  Dictionary dict;
  auto result = ReadCsv(&in, "t", CsvOptions{}, &dict);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
}

TEST(CsvTest, RejectsEmptyInput) {
  std::istringstream empty("");
  Dictionary dict;
  EXPECT_FALSE(ReadCsv(&empty, "t", CsvOptions{}, &dict).ok());
  std::istringstream header_only("a,b\n");
  EXPECT_FALSE(ReadCsv(&header_only, "t", CsvOptions{}, &dict).ok());
}

TEST(CsvTest, HeaderlessInputGetsSyntheticNames) {
  std::istringstream in("1,2\n3,4\n");
  Dictionary dict;
  CsvOptions opts;
  opts.has_header = false;
  auto result = ReadCsv(&in, "t", opts, &dict);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().schema().columns[0].name, "col0");
  EXPECT_EQ(result.value().num_rows(), 2u);
}

TEST(CsvTest, WriteReadRoundTrip) {
  TableSchema schema{"t", {{"x", false}, {"y", false}}};
  Table original(schema);
  original.AppendColumns({{5, -3, 7}, {1, 2, 3}});
  original.Finalize();

  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(original, &out).ok());
  std::istringstream in(out.str());
  Dictionary dict;
  auto restored = ReadCsv(&in, "t", CsvOptions{}, &dict);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().column(0), original.column(0));
  EXPECT_EQ(restored.value().column(1), original.column(1));
  EXPECT_EQ(restored.value().schema().columns[0].name, "x");
}

TEST(CsvTest, AlternateDelimiter) {
  std::istringstream in("a;b\n1;2\n");
  Dictionary dict;
  CsvOptions opts;
  opts.delimiter = ';';
  auto result = ReadCsv(&in, "t", opts, &dict);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().column(1)[0], 2);
}

TEST(CsvTest, MissingFileReturnsNotFound) {
  Dictionary dict;
  auto result = ReadCsvFile("/nonexistent/file.csv", "t", CsvOptions{}, &dict);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace storage
}  // namespace lce
