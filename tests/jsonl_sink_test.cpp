#include "src/util/telemetry/jsonl_sink.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace lce {
namespace telemetry {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(JsonlSinkTest, AppendBuffersUntilFlush) {
  const std::string path = ::testing::TempDir() + "jsonl_sink_basic.jsonl";
  std::remove(path.c_str());
  JsonlSink sink("test sink");
  sink.Append(R"({"n":1})", path);
  sink.Append(R"({"n":2})", path);
  EXPECT_EQ(sink.lines_appended(), 2u);
  ASSERT_TRUE(sink.Flush(path).ok());
  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], R"({"n":1})");
  EXPECT_EQ(lines[1], R"({"n":2})");
  std::remove(path.c_str());
}

TEST(JsonlSinkTest, ConcurrentAppendAndFlushLoseNothing) {
  // Four writers hammer Append while a fifth thread flushes continuously;
  // every line must land exactly once and stay newline-terminated (no
  // interleaving inside a line).
  const std::string path = ::testing::TempDir() + "jsonl_sink_concurrent.jsonl";
  std::remove(path.c_str());
  JsonlSink sink("test sink");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;

  std::atomic<bool> writers_done{false};
  std::thread flusher([&] {
    while (!writers_done.load(std::memory_order_acquire)) {
      EXPECT_TRUE(sink.Flush(path).ok());
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sink.Append("{\"t\":" + std::to_string(t) +
                        ",\"i\":" + std::to_string(i) + "}",
                    path);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  writers_done.store(true, std::memory_order_release);
  flusher.join();
  ASSERT_TRUE(sink.Flush(path).ok());
  EXPECT_EQ(sink.lines_appended(),
            static_cast<uint64_t>(kThreads) * kPerThread);

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads) * kPerThread);
  std::set<std::string> unique(lines.begin(), lines.end());
  EXPECT_EQ(unique.size(), lines.size());  // no duplicates, no torn lines
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(unique.count("{\"t\":" + std::to_string(t) + ",\"i\":0}"), 1u);
    EXPECT_EQ(unique.count("{\"t\":" + std::to_string(t) + ",\"i\":" +
                           std::to_string(kPerThread - 1) + "}"),
              1u);
  }
  std::remove(path.c_str());
}

TEST(JsonlSinkTest, PathChangeMidStreamSwitchesFiles) {
  // QueryLog's path can be re-pointed between benches (SetQueryLogPath /
  // the *ForTesting override); one sink must serve both files across the
  // change, with concurrent writers and a concurrent flusher on each side.
  const std::string path_a = ::testing::TempDir() + "jsonl_sink_path_a.jsonl";
  const std::string path_b = ::testing::TempDir() + "jsonl_sink_path_b.jsonl";
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  JsonlSink sink("test sink");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 4000;

  auto hammer = [&](int phase, const std::string& path) {
    std::atomic<bool> writers_done{false};
    std::thread flusher([&] {
      while (!writers_done.load(std::memory_order_acquire)) {
        EXPECT_TRUE(sink.Flush(path).ok());
        std::this_thread::yield();
      }
    });
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          sink.Append("{\"p\":" + std::to_string(phase) +
                          ",\"t\":" + std::to_string(t) +
                          ",\"i\":" + std::to_string(i) + "}",
                      path);
        }
      });
    }
    for (std::thread& w : writers) w.join();
    writers_done.store(true, std::memory_order_release);
    flusher.join();
    ASSERT_TRUE(sink.Flush(path).ok());  // drain this phase's remainder
  };
  hammer(1, path_a);
  hammer(2, path_b);  // mid-stream switch: same sink, new destination

  std::vector<std::string> a = ReadLines(path_a);
  std::vector<std::string> b = ReadLines(path_b);
  EXPECT_EQ(sink.lines_appended(),
            static_cast<uint64_t>(2 * kThreads) * kPerThread);
  ASSERT_EQ(a.size(), static_cast<size_t>(kThreads) * kPerThread);
  ASSERT_EQ(b.size(), static_cast<size_t>(kThreads) * kPerThread);
  // Nothing leaked across the switch and nothing tore: each file holds
  // exactly its own phase's distinct lines.
  std::set<std::string> unique_a(a.begin(), a.end());
  std::set<std::string> unique_b(b.begin(), b.end());
  EXPECT_EQ(unique_a.size(), a.size());
  EXPECT_EQ(unique_b.size(), b.size());
  for (const std::string& line : a) {
    EXPECT_EQ(line.rfind("{\"p\":1,", 0), 0u) << line;
  }
  for (const std::string& line : b) {
    EXPECT_EQ(line.rfind("{\"p\":2,", 0), 0u) << line;
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(JsonlSinkTest, ResetForTestingDropsBufferAndCounters) {
  const std::string path = ::testing::TempDir() + "jsonl_sink_reset.jsonl";
  std::remove(path.c_str());
  JsonlSink sink("test sink");
  sink.Append(R"({"dropped":true})", path);
  sink.ResetForTesting();
  EXPECT_EQ(sink.lines_appended(), 0u);
  ASSERT_TRUE(sink.Flush(path).ok());
  EXPECT_TRUE(ReadLines(path).empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace telemetry
}  // namespace lce
