// Bit-identity of the batched (SoA, level-synchronous) GBDT inference path
// against per-row Predict(), on a randomized ensemble, across LCE_SIMD
// settings and thread counts — plus the LW-XGB EstimateBatch wiring.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/ce/query_driven/lwxgb_model.h"
#include "src/gbdt/gbdt.h"
#include "src/storage/datagen.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"
#include "src/util/simd.h"
#include "src/workload/generator.h"

namespace lce {
namespace gbdt {
namespace {

struct KernelEnvGuard {
  ~KernelEnvGuard() {
    simd::SetSimdEnabledForTesting(-1);
    parallel::SetThreadCountForTesting(0);
  }
};

uint32_t BitsOf(float v) {
  uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

// A nonlinear multi-feature problem so trees split on every feature and
// reach varied depths (including some single-leaf trees late in boosting).
void MakeProblem(int n, std::vector<std::vector<float>>* rows,
                 std::vector<float>* targets) {
  Rng rng(17);
  for (int i = 0; i < n; ++i) {
    float a = static_cast<float>(rng.Uniform());
    float b = static_cast<float>(rng.Uniform(-2, 2));
    float c = static_cast<float>(rng.Gaussian());
    rows->push_back({a, b, c});
    targets->push_back(std::sin(5 * a) + 0.5f * b * std::abs(c));
  }
}

TEST(GbdtBatchTest, PredictBatchIsBitIdenticalToPredict) {
  std::vector<std::vector<float>> rows;
  std::vector<float> targets;
  MakeProblem(900, &rows, &targets);
  GradientBoosting::Options opts;
  opts.num_trees = 48;
  GradientBoosting model(opts);
  model.Fit(rows, targets);

  // Per-row reference under the naive path.
  KernelEnvGuard guard;
  simd::SetSimdEnabledForTesting(0);
  std::vector<float> reference;
  for (const auto& row : rows) reference.push_back(model.Predict(row));

  for (int threads : {1, 4}) {
    parallel::SetThreadCountForTesting(threads);
    for (int simd_on : {0, 1}) {
      simd::SetSimdEnabledForTesting(simd_on);
      std::vector<float> batch = model.PredictBatch(rows);
      ASSERT_EQ(batch.size(), reference.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        ASSERT_EQ(BitsOf(batch[i]), BitsOf(reference[i]))
            << "row " << i << " simd=" << simd_on << " threads=" << threads;
      }
    }
  }
}

TEST(GbdtBatchTest, TrainingIsBitIdenticalAcrossSimdSettings) {
  // AddTrees replays predictions through the batched traversal when SIMD is
  // on; the fitted ensembles must still match the naive path bit for bit.
  std::vector<std::vector<float>> rows;
  std::vector<float> targets;
  MakeProblem(600, &rows, &targets);
  GradientBoosting::Options opts;
  opts.num_trees = 24;

  KernelEnvGuard guard;
  auto fit_and_predict = [&] {
    GradientBoosting model(opts);
    model.Fit(rows, targets);
    model.Boost(rows, targets, 8);  // incremental path replays the ensemble
    std::vector<float> preds;
    for (const auto& row : rows) preds.push_back(model.Predict(row));
    return preds;
  };
  simd::SetSimdEnabledForTesting(0);
  std::vector<float> naive = fit_and_predict();
  simd::SetSimdEnabledForTesting(1);
  std::vector<float> batched = fit_and_predict();
  for (size_t i = 0; i < naive.size(); ++i) {
    ASSERT_EQ(BitsOf(naive[i]), BitsOf(batched[i])) << "row " << i;
  }
}

TEST(GbdtBatchTest, SingleLeafEnsembleAndSingleRowWork) {
  // Constant targets: every tree is one self-looping leaf (levels == 0).
  std::vector<std::vector<float>> rows(40, {1.0f, 2.0f});
  std::vector<float> targets(40, 3.25f);
  GradientBoosting model;
  model.Fit(rows, targets);
  std::vector<float> batch =
      model.PredictBatch({{1.0f, 2.0f}});  // single row < block size
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(BitsOf(batch[0]), BitsOf(model.Predict({1.0f, 2.0f})));
}

TEST(GbdtBatchTest, LwXgbEstimateBatchMatchesPerQuery) {
  auto db = storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.02), 1);
  workload::WorkloadOptions wopts;
  wopts.max_joins = 2;
  workload::WorkloadGenerator gen(db.get(), wopts);
  Rng rng(7);
  auto labeled = gen.GenerateLabeled(60, &rng);

  ce::LwXgbEstimator est;
  ASSERT_TRUE(est.Build(*db, labeled).ok());

  std::vector<query::Query> queries;
  for (const auto& lq : labeled) queries.push_back(lq.q);
  std::vector<double> batch = est.EstimateBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch[i], est.EstimateCardinality(queries[i])) << "query " << i;
  }
}

}  // namespace
}  // namespace gbdt
}  // namespace lce
