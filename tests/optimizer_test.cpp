#include "src/optimizer/planner.h"

#include <gtest/gtest.h>

#include "src/exec/executor.h"
#include "src/storage/datagen.h"
#include "src/workload/generator.h"

namespace lce {
namespace opt {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = storage::datagen::Generate(storage::datagen::TpchLikeSpec(0.05), 1);
    executor_ = std::make_unique<exec::Executor>(db_.get());
    planner_ = std::make_unique<Planner>(db_.get(), CostModel{});
  }

  CardFn TrueCards(const query::Query& q) {
    return [this, &q](const std::vector<int>& tables) {
      return executor_->SubsetCardinality(q, tables);
    };
  }

  query::Query FourWayJoin() {
    // customer ⋈ orders ⋈ lineitem ⋈ part.
    query::Query q;
    q.tables = {0, 1, 3, 4};
    q.join_edges = {0, 1, 2};
    q.predicates = {{{0, 1}, 0, 5}, {{1, 2}, 0, 20}};
    return q;
  }

  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<exec::Executor> executor_;
  std::unique_ptr<Planner> planner_;
};

TEST_F(PlannerTest, SingleTablePlanIsAScan) {
  query::Query q;
  q.tables = {2};
  Plan plan = planner_->BestPlan(q, TrueCards(q));
  EXPECT_EQ(plan.nodes.size(), 1u);
  EXPECT_TRUE(plan.nodes[plan.root].IsLeaf());
  EXPECT_EQ(plan.nodes[plan.root].table, 2);
}

TEST_F(PlannerTest, PlanCoversAllTablesExactlyOnce) {
  query::Query q = FourWayJoin();
  Plan plan = planner_->BestPlan(q, TrueCards(q));
  // Root mask covers all 4 positions.
  EXPECT_EQ(plan.nodes[plan.root].mask, (1u << 4) - 1);
  // Children partition the parent's mask.
  for (const PlanNode& n : plan.nodes) {
    if (n.IsLeaf()) continue;
    uint32_t l = plan.nodes[n.left].mask;
    uint32_t r = plan.nodes[n.right].mask;
    EXPECT_EQ(l & r, 0u);
    EXPECT_EQ(l | r, n.mask);
  }
}

TEST_F(PlannerTest, DpMatchesExhaustiveSearchOnThreeTables) {
  // All plans of a 3-table chain: enumerate by hand and compare best cost.
  query::Query q;
  q.tables = {0, 3, 4};  // customer ⋈ orders ⋈ lineitem
  q.join_edges = {0, 1};
  q.predicates = {{{0, 1}, 0, 8}};
  CardFn cards = TrueCards(q);
  Plan plan = planner_->BestPlan(q, cards);

  CostModel cm;
  auto rows = [&](int t) {
    return static_cast<double>(db_->table(t).num_rows());
  };
  double c0 = cards({0}), c3 = cards({3}), c4 = cards({4});
  double c03 = cards({0, 3}), c34 = cards({3, 4});
  double c034 = cards({0, 3, 4});
  double scan = cm.ScanCost(rows(0)) + cm.ScanCost(rows(3)) +
                cm.ScanCost(rows(4));
  // Valid join orders (no cross products): (0⋈3)⋈4 and 0⋈(3⋈4), each with
  // two build-side choices per join.
  std::vector<double> candidates;
  for (bool swap_outer : {false, true}) {
    for (bool swap_inner : {false, true}) {
      // ((0,3),4)
      double inner = swap_inner ? cm.JoinCost(c3, c0, c03)
                                : cm.JoinCost(c0, c3, c03);
      double outer = swap_outer ? cm.JoinCost(c4, c03, c034)
                                : cm.JoinCost(c03, c4, c034);
      candidates.push_back(scan + inner + outer);
      // (0,(3,4))
      inner = swap_inner ? cm.JoinCost(c4, c3, c34) : cm.JoinCost(c3, c4, c34);
      outer = swap_outer ? cm.JoinCost(c34, c0, c034)
                         : cm.JoinCost(c0, c34, c034);
      candidates.push_back(scan + inner + outer);
    }
  }
  double best = *std::min_element(candidates.begin(), candidates.end());
  EXPECT_NEAR(plan.cost, best, best * 1e-9);
}

TEST_F(PlannerTest, CostWithSameCardsReproducesPlanCost) {
  query::Query q = FourWayJoin();
  CardFn cards = TrueCards(q);
  Plan plan = planner_->BestPlan(q, cards);
  EXPECT_NEAR(planner_->CostWithCards(q, plan, cards), plan.cost,
              plan.cost * 1e-9);
}

TEST_F(PlannerTest, MisestimatesNeverBeatTrueCardPlan) {
  query::Query q = FourWayJoin();
  CardFn true_cards = TrueCards(q);
  Plan optimal = planner_->BestPlan(q, true_cards);
  // A hostile estimator: inverts relative sizes.
  CardFn bad_cards = [&](const std::vector<int>& tables) {
    return 1e9 / (true_cards(tables) + 1.0);
  };
  Plan bad_plan = planner_->BestPlan(q, bad_cards);
  double bad_true_cost = planner_->CostWithCards(q, bad_plan, true_cards);
  EXPECT_GE(bad_true_cost, optimal.cost * (1 - 1e-9));
}

TEST_F(PlannerTest, ToStringMentionsEveryTable) {
  query::Query q = FourWayJoin();
  Plan plan = planner_->BestPlan(q, TrueCards(q));
  std::string s = planner_->ToString(q, plan);
  for (int t : q.tables) {
    EXPECT_NE(s.find(db_->schema().tables[t].name), std::string::npos) << s;
  }
}

TEST_F(PlannerTest, CachesCardinalityCallsPerSubset) {
  query::Query q = FourWayJoin();
  int calls = 0;
  CardFn counting = [&](const std::vector<int>& tables) {
    ++calls;
    return executor_->SubsetCardinality(q, tables);
  };
  planner_->BestPlan(q, counting);
  // Connected subsets of a 4-node tree (star around lineitem? here a chain
  // c-o-l plus l-p): far fewer than the 2^4 upper bound, and each computed
  // exactly once.
  EXPECT_LE(calls, 15);
  int first = calls;
  calls = 0;
  planner_->BestPlan(q, counting);
  EXPECT_EQ(calls, first);  // deterministic enumeration
}

TEST(PlannerPropertyTest, RandomQueriesPlanAndReplayConsistently) {
  auto db = storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.03), 3);
  exec::Executor ex(db.get());
  Planner planner(db.get(), CostModel{});
  workload::WorkloadOptions opts;
  opts.max_joins = 3;
  workload::WorkloadGenerator gen(db.get(), opts);
  Rng rng(4);
  auto queries = gen.GenerateLabeled(20, &rng);
  for (const auto& lq : queries) {
    if (lq.q.tables.size() < 2) continue;
    CardFn cards = [&](const std::vector<int>& tables) {
      return ex.SubsetCardinality(lq.q, tables);
    };
    Plan plan = planner.BestPlan(lq.q, cards);
    EXPECT_GT(plan.cost, 0);
    EXPECT_NEAR(planner.CostWithCards(lq.q, plan, cards), plan.cost,
                plan.cost * 1e-9);
  }
}

}  // namespace
}  // namespace opt
}  // namespace lce
