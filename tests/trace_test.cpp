#include "src/workload/trace.h"

#include <sstream>

#include <gtest/gtest.h>

#include "src/storage/datagen.h"
#include "src/workload/generator.h"

namespace lce {
namespace workload {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = storage::datagen::Generate(storage::datagen::TpchLikeSpec(0.03), 1);
  }
  std::unique_ptr<storage::Database> db_;
};

TEST_F(TraceTest, SaveLoadRoundTripsQueriesAndLabels) {
  WorkloadOptions opts;
  opts.max_joins = 2;
  WorkloadGenerator gen(db_.get(), opts);
  Rng rng(2);
  auto workload = gen.GenerateLabeled(25, &rng);

  std::stringstream buffer;
  ASSERT_TRUE(SaveTrace(workload, db_->schema(), &buffer).ok());
  auto loaded = LoadTrace(&buffer, *db_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), workload.size());
  exec::Executor ex(db_.get());
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.value()[i].cardinality, workload[i].cardinality);
    // Loaded queries must be semantically identical.
    EXPECT_DOUBLE_EQ(ex.Cardinality(loaded.value()[i].q),
                     ex.Cardinality(workload[i].q));
  }
}

TEST_F(TraceTest, SkipsCommentsAndBlankLines) {
  std::stringstream in(
      "# a comment\n"
      "\n"
      "42\tSELECT COUNT(*) FROM customer;\n");
  auto loaded = LoadTrace(&in, *db_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.value()[0].cardinality, 42.0);
}

TEST_F(TraceTest, ReportsLineNumberOnBadSql) {
  std::stringstream in(
      "1\tSELECT COUNT(*) FROM customer;\n"
      "2\tSELECT COUNT(*) FROM nonsense;\n");
  auto loaded = LoadTrace(&in, *db_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST_F(TraceTest, RejectsMissingSeparator) {
  std::stringstream in("notacount SELECT COUNT(*) FROM customer;\n");
  EXPECT_FALSE(LoadTrace(&in, *db_).ok());
}

TEST_F(TraceTest, MissingFileIsNotFound) {
  auto loaded = LoadTraceFile("/does/not/exist.trace", *db_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace workload
}  // namespace lce
