#include "src/util/json_writer.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace lce {
namespace {

TEST(JsonWriterTest, CompactObjectWithNestedArray) {
  std::string out;
  JsonWriter w(&out, JsonWriter::Style::kCompact);
  w.BeginObject()
      .Key("kernel").Value("matmul")
      .Key("threads").Value(int64_t{4})
      .Key("ok").Value(true)
      .Key("speedups").BeginArray().Value(1.0).Value(1.9).EndArray()
      .EndObject();
  EXPECT_TRUE(w.done());
  EXPECT_EQ(out,
            "{\"kernel\":\"matmul\",\"threads\":4,\"ok\":true,"
            "\"speedups\":[1,1.9]}");
}

TEST(JsonWriterTest, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::Escape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteDoublesEmitNull) {
  std::string out;
  JsonWriter w(&out, JsonWriter::Style::kCompact);
  w.BeginArray()
      .Value(std::numeric_limits<double>::quiet_NaN())
      .Value(std::numeric_limits<double>::infinity())
      .Value(1.5)
      .EndArray();
  EXPECT_EQ(out, "[null,null,1.5]");
}

TEST(JsonWriterTest, PrettyStyleParsesBack) {
  std::string out;
  JsonWriter w(&out);  // kPretty
  w.BeginObject()
      .Key("name").Value("bench")
      .Key("values").BeginArray().Value(1).Value(2).Value(3).EndArray()
      .Key("nested").BeginObject().Key("x").Null().EndObject()
      .EndObject();
  json::JsonValue v;
  std::string error;
  ASSERT_TRUE(json::Parse(out, &v, &error)) << error;
  ASSERT_EQ(v.kind, json::JsonValue::Kind::kObject);
  EXPECT_EQ(v.Find("name")->string, "bench");
  EXPECT_EQ(v.Find("values")->array.size(), 3u);
  EXPECT_EQ(v.Find("nested")->Find("x")->kind, json::JsonValue::Kind::kNull);
}

TEST(JsonParseTest, RoundTripsEscapedStrings) {
  std::string original = "line1\nline2 \"quoted\" back\\slash";
  std::string out;
  JsonWriter w(&out, JsonWriter::Style::kCompact);
  w.BeginObject().Key("s").Value(original).EndObject();
  json::JsonValue v;
  ASSERT_TRUE(json::Parse(out, &v));
  EXPECT_EQ(v.Find("s")->string, original);
}

TEST(JsonParseTest, ParsesUnicodeEscapesAndNumbers) {
  json::JsonValue v;
  ASSERT_TRUE(json::Parse(R"({"u":"A\u00e9","n":-1.25e2})", &v));
  EXPECT_EQ(v.Find("u")->string, "A\xc3\xa9");
  EXPECT_DOUBLE_EQ(v.Find("n")->number, -125.0);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  json::JsonValue v;
  std::string error;
  EXPECT_FALSE(json::Parse("{\"a\":}", &v, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(json::Parse("[1,2", &v));
  EXPECT_FALSE(json::Parse("{} trailing", &v));
}

TEST(JsonParseTest, MalformedInputReportsByteOffset) {
  json::JsonValue v;
  std::string error;
  ASSERT_FALSE(json::Parse("{\"a\": nul}", &v, &error));
  EXPECT_NE(error.find("at offset"), std::string::npos) << error;
  ASSERT_FALSE(json::Parse("", &v, &error));
  EXPECT_NE(error.find("at offset"), std::string::npos) << error;
  ASSERT_FALSE(json::Parse("[1, 2,, 3]", &v, &error));
  EXPECT_NE(error.find("at offset"), std::string::npos) << error;
  ASSERT_FALSE(json::Parse("\"unterminated", &v, &error));
  EXPECT_NE(error.find("at offset"), std::string::npos) << error;
}

TEST(JsonParseTest, DeepNestingParsesUpToTheCap) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  deep += "1";
  for (int i = 0; i < 200; ++i) deep += ']';
  json::JsonValue v;
  std::string error;
  EXPECT_TRUE(json::Parse(deep, &v, &error)) << error;
}

TEST(JsonParseTest, NestingBeyondTheCapFailsGracefully) {
  // 5000 unclosed brackets would overflow the recursion stack without the
  // depth cap; with it this is an ordinary parse error.
  std::string hostile(5000, '[');
  json::JsonValue v;
  std::string error;
  ASSERT_FALSE(json::Parse(hostile, &v, &error));
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;
}

}  // namespace
}  // namespace lce
