#include <gtest/gtest.h>

#include <string>

#include "src/util/bench_diff.h"
#include "src/util/fs.h"
#include "src/util/json_writer.h"

namespace lce {
namespace benchdiff {
namespace {

json::JsonValue ParseOrDie(const std::string& text) {
  json::JsonValue v;
  std::string error;
  EXPECT_TRUE(json::Parse(text, &v, &error)) << error;
  return v;
}

constexpr char kBaseline[] = R"({
  "bench": "r2_costs",
  "wall_seconds": 12.5,
  "metrics": {
    "gauges": {"ce/FCN/qerr_p95_window": 4.0, "ce/Naru/qerr_p95_window": 2.0},
    "counters": {"exec.rows_scanned": 1000, "drift.alerts": 0}
  },
  "phases": [{"name": "eval", "total_ms": 90.0, "calls": 10}]
})";

TEST(BenchDiffTest, FlattenProducesSlashPaths) {
  auto flat = FlattenNumbers(ParseOrDie(kBaseline));
  bool found_gauge = false, found_phase = false;
  for (const auto& [key, value] : flat) {
    if (key == "metrics/gauges/ce/FCN/qerr_p95_window") {
      found_gauge = true;
      EXPECT_DOUBLE_EQ(value, 4.0);
    }
    if (key == "phases/0/calls") found_phase = true;
  }
  EXPECT_TRUE(found_gauge);
  EXPECT_TRUE(found_phase);
}

TEST(BenchDiffTest, IdenticalManifestsPass) {
  json::JsonValue v = ParseOrDie(kBaseline);
  DiffReport report = Diff(v, v, Options{});
  EXPECT_FALSE(report.has_regression());
  EXPECT_EQ(report.regressions, 0);
  EXPECT_GT(report.keys_compared, 0);
}

TEST(BenchDiffTest, PerturbedWatchedMetricIsFlagged) {
  std::string perturbed = kBaseline;
  size_t pos = perturbed.find("4.0");
  ASSERT_NE(pos, std::string::npos);
  perturbed.replace(pos, 3, "9.0");  // qerr p95 up 2.25x
  DiffReport report =
      Diff(ParseOrDie(kBaseline), ParseOrDie(perturbed), Options{});
  EXPECT_TRUE(report.has_regression());
  ASSERT_FALSE(report.entries.empty());
  // Regressions sort first.
  EXPECT_EQ(report.entries[0].verdict, Verdict::kRegression);
  EXPECT_EQ(report.entries[0].key, "metrics/gauges/ce/FCN/qerr_p95_window");
  EXPECT_TRUE(report.entries[0].watched);
  std::string md = report.ToMarkdown();
  EXPECT_NE(md.find("REGRESSION"), std::string::npos);
  EXPECT_NE(md.find("qerr_p95_window"), std::string::npos);
}

TEST(BenchDiffTest, WatchedImprovementIsNotRegression) {
  std::string improved = kBaseline;
  size_t pos = improved.find("4.0");
  improved.replace(pos, 3, "1.5");
  DiffReport report =
      Diff(ParseOrDie(kBaseline), ParseOrDie(improved), Options{});
  EXPECT_FALSE(report.has_regression());
  EXPECT_EQ(report.improvements, 1);
}

TEST(BenchDiffTest, UnwatchedChangeNeverGates) {
  std::string changed = kBaseline;
  size_t pos = changed.find("1000");
  ASSERT_NE(pos, std::string::npos);
  changed.replace(pos, 4, "9999");  // exec.rows_scanned 10x — informational
  DiffReport report =
      Diff(ParseOrDie(kBaseline), ParseOrDie(changed), Options{});
  EXPECT_FALSE(report.has_regression());
  bool reported = false;
  for (const Entry& e : report.entries) {
    if (e.key == "metrics/counters/exec.rows_scanned") {
      reported = true;
      EXPECT_EQ(e.verdict, Verdict::kOk);
      EXPECT_FALSE(e.watched);
    }
  }
  EXPECT_TRUE(reported);
}

// Absolute tolerance: a watched key with a tiny baseline (per-event
// nanoseconds) can jump far past rel_tol on jitter alone; abs_tol adds a
// floor under which the change never counts.
TEST(BenchDiffTest, AbsToleranceSuppressesSmallAbsoluteMoves) {
  constexpr char kNsBase[] = R"({
    "metrics": {"gauges": {"telemetry.overhead.span_on": 5.0}}
  })";
  constexpr char kNsCur[] = R"({
    "metrics": {"gauges": {"telemetry.overhead.span_on": 9.0}}
  })";  // +80% relative, +4 absolute
  Options options;
  options.watch = {"overhead"};
  options.rel_tol = 0.25;

  DiffReport without = Diff(ParseOrDie(kNsBase), ParseOrDie(kNsCur), options);
  EXPECT_TRUE(without.has_regression());

  options.abs_tol = 10.0;  // anything within 10 ns is noise
  DiffReport with = Diff(ParseOrDie(kNsBase), ParseOrDie(kNsCur), options);
  EXPECT_FALSE(with.has_regression());
  EXPECT_TRUE(with.entries.empty());
}

TEST(BenchDiffTest, AbsToleranceStillCatchesLargeMoves) {
  constexpr char kNsBase[] = R"({
    "metrics": {"gauges": {"telemetry.overhead.span_on": 5.0}}
  })";
  constexpr char kNsCur[] = R"({
    "metrics": {"gauges": {"telemetry.overhead.span_on": 80.0}}
  })";  // both bounds blown: 16x relative, +75 absolute
  Options options;
  options.watch = {"overhead"};
  options.rel_tol = 0.25;
  options.abs_tol = 10.0;
  DiffReport report = Diff(ParseOrDie(kNsBase), ParseOrDie(kNsCur), options);
  EXPECT_TRUE(report.has_regression());
}

TEST(BenchDiffTest, AbsToleranceDoesNotMaskMissingKeys) {
  constexpr char kNsBase[] = R"({
    "metrics": {"gauges": {"telemetry.overhead.span_on": 5.0}}
  })";
  Options options;
  options.watch = {"overhead"};
  options.abs_tol = 1e9;
  DiffReport report =
      Diff(ParseOrDie(kNsBase), ParseOrDie("{}"), options);
  EXPECT_TRUE(report.has_regression());  // vanished watched key still gates
}

TEST(BenchDiffTest, MissingWatchedKeyIsRegression) {
  constexpr char kCurrent[] = R"({
    "metrics": {"gauges": {"ce/FCN/qerr_p95_window": 4.0}}
  })";  // Naru gauge vanished
  DiffReport report =
      Diff(ParseOrDie(kBaseline), ParseOrDie(kCurrent), Options{});
  EXPECT_TRUE(report.has_regression());
  bool found = false;
  for (const Entry& e : report.entries) {
    if (e.key == "metrics/gauges/ce/Naru/qerr_p95_window") {
      found = true;
      EXPECT_EQ(e.verdict, Verdict::kRegression);
    }
  }
  EXPECT_TRUE(found);
}

TEST(BenchDiffTest, IgnoredKeysNeverCompared) {
  std::string changed = kBaseline;
  size_t pos = changed.find("12.5");
  ASSERT_NE(pos, std::string::npos);
  changed.replace(pos, 4, "99.9");  // wall_seconds is volatile, ignored
  DiffReport report =
      Diff(ParseOrDie(kBaseline), ParseOrDie(changed), Options{});
  for (const Entry& e : report.entries) {
    EXPECT_EQ(e.key.find("wall_seconds"), std::string::npos);
  }
  EXPECT_FALSE(report.has_regression());
}

TEST(BenchDiffTest, DiffFilesReportsIoAndParseErrors) {
  Options options;
  Result<DiffReport> missing =
      DiffFiles("/nonexistent/base.json", "/nonexistent/cur.json", options);
  EXPECT_FALSE(missing.ok());

  std::string dir = ::testing::TempDir();
  std::string good = dir + "bench_diff_good.json";
  std::string bad = dir + "bench_diff_bad.json";
  ASSERT_TRUE(fs::WriteStringToFile(good, kBaseline).ok());
  ASSERT_TRUE(fs::WriteStringToFile(bad, "{not json").ok());
  Result<DiffReport> parse_error = DiffFiles(good, bad, options);
  EXPECT_FALSE(parse_error.ok());
  // The error names the offending file and the byte offset of the problem.
  std::string message = parse_error.status().ToString();
  EXPECT_NE(message.find(bad), std::string::npos) << message;
  EXPECT_NE(message.find("at offset"), std::string::npos) << message;

  Result<DiffReport> ok = DiffFiles(good, good, options);
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(ok.value().has_regression());
}

}  // namespace
}  // namespace benchdiff
}  // namespace lce
