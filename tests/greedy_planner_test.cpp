#include <gtest/gtest.h>

#include "src/exec/executor.h"
#include "src/optimizer/planner.h"
#include "src/storage/datagen.h"
#include "src/workload/generator.h"

namespace lce {
namespace opt {
namespace {

class GreedyPlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.03), 2);
    executor_ = std::make_unique<exec::Executor>(db_.get());
    planner_ = std::make_unique<Planner>(db_.get(), CostModel{});
  }
  CardFn TrueCards(const query::Query& q) {
    return [this, &q](const std::vector<int>& tables) {
      return executor_->SubsetCardinality(q, tables);
    };
  }
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<exec::Executor> executor_;
  std::unique_ptr<Planner> planner_;
};

TEST_F(GreedyPlannerTest, ProducesValidPlanStructure) {
  query::Query q;
  q.tables = {0, 1, 2, 3};
  q.join_edges = {0, 1, 2};
  Plan plan = planner_->GreedyPlan(q, TrueCards(q));
  EXPECT_EQ(plan.nodes[plan.root].mask, (1u << 4) - 1);
  for (const PlanNode& n : plan.nodes) {
    if (n.IsLeaf()) continue;
    EXPECT_EQ(plan.nodes[n.left].mask & plan.nodes[n.right].mask, 0u);
    EXPECT_EQ(plan.nodes[n.left].mask | plan.nodes[n.right].mask, n.mask);
  }
}

TEST_F(GreedyPlannerTest, NeverBeatsExactDp) {
  workload::WorkloadOptions opts;
  opts.max_joins = 4;
  workload::WorkloadGenerator gen(db_.get(), opts);
  Rng rng(3);
  for (const auto& lq : gen.GenerateLabeled(15, &rng)) {
    if (lq.q.tables.size() < 2) continue;
    CardFn cards = TrueCards(lq.q);
    Plan dp = planner_->BestPlan(lq.q, cards);
    Plan greedy = planner_->GreedyPlan(lq.q, cards);
    EXPECT_GE(greedy.cost, dp.cost * (1 - 1e-9));
    // Replaying each plan under its own planning cards reproduces its cost.
    EXPECT_NEAR(planner_->CostWithCards(lq.q, greedy, cards), greedy.cost,
                greedy.cost * 1e-9);
  }
}

TEST_F(GreedyPlannerTest, SingleTableIsAScan) {
  query::Query q;
  q.tables = {2};
  Plan plan = planner_->GreedyPlan(q, TrueCards(q));
  EXPECT_TRUE(plan.nodes[plan.root].IsLeaf());
}

TEST_F(GreedyPlannerTest, TwoTableGreedyMatchesDp) {
  query::Query q;
  q.tables = {0, 1};
  q.join_edges = {0};
  CardFn cards = TrueCards(q);
  EXPECT_NEAR(planner_->GreedyPlan(q, cards).cost,
              planner_->BestPlan(q, cards).cost, 1e-6);
}

}  // namespace
}  // namespace opt
}  // namespace lce
