#include "src/eval/e2e.h"

#include <gtest/gtest.h>

#include "src/ce/factory.h"
#include "src/storage/datagen.h"
#include "src/workload/generator.h"

namespace lce {
namespace eval {
namespace {

// An estimator wrapper that answers with exact counts: the optimizer given
// this oracle must always produce the optimal plan (p_error == 1).
class OracleEstimator : public ce::Estimator {
 public:
  explicit OracleEstimator(const storage::Database* db) : executor_(db) {}
  std::string Name() const override { return "Oracle"; }
  Status Build(const storage::Database& db,
               const std::vector<query::LabeledQuery>& training) override {
    (void)db;
    (void)training;
    return Status::OK();
  }
  double EstimateCardinality(const query::Query& q) override {
    return std::max(1.0, executor_.Cardinality(q));
  }
  uint64_t SizeBytes() const override { return 0; }

 private:
  exec::Executor executor_;
};

class E2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = storage::datagen::Generate(storage::datagen::TpchLikeSpec(0.05), 1);
    executor_ = std::make_unique<exec::Executor>(db_.get());
    planner_ = std::make_unique<opt::Planner>(db_.get(), opt::CostModel{});
    workload::WorkloadOptions opts;
    opts.max_joins = 3;
    workload::WorkloadGenerator gen(db_.get(), opts);
    Rng rng(2);
    workload_ = gen.GenerateLabeled(25, &rng);
  }
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<exec::Executor> executor_;
  std::unique_ptr<opt::Planner> planner_;
  std::vector<query::LabeledQuery> workload_;
};

TEST_F(E2eTest, OracleEstimatorAchievesPErrorOne) {
  OracleEstimator oracle(db_.get());
  for (const auto& lq : workload_) {
    if (lq.q.tables.size() < 2) continue;
    PlanQuality pq = EvaluatePlanQuality(*db_, *executor_, *planner_, &oracle,
                                         lq.q);
    EXPECT_NEAR(pq.p_error, 1.0, 1e-9);
  }
}

TEST_F(E2eTest, PErrorIsAtLeastOneForAnyEstimator) {
  auto hist = ce::MakeEstimator("Histogram");
  ASSERT_TRUE(hist->Build(*db_, {}).ok());
  for (const auto& lq : workload_) {
    if (lq.q.tables.size() < 2) continue;
    PlanQuality pq = EvaluatePlanQuality(*db_, *executor_, *planner_,
                                         hist.get(), lq.q);
    EXPECT_GE(pq.p_error, 1.0);
    EXPECT_GE(pq.est_plan_true_cost, pq.opt_plan_true_cost * (1 - 1e-9));
  }
}

TEST_F(E2eTest, WorkloadAggregationIsConsistent) {
  auto hist = ce::MakeEstimator("Histogram");
  ASSERT_TRUE(hist->Build(*db_, {}).ok());
  WorkloadPlanQuality agg = EvaluateWorkloadPlanQuality(
      *db_, *executor_, *planner_, hist.get(), workload_);
  EXPECT_GE(agg.total_est_cost, agg.total_opt_cost * (1 - 1e-9));
  EXPECT_GE(agg.mean_p_error, 1.0);
  EXPECT_GE(agg.max_p_error, agg.mean_p_error * (1 - 1e-9));
}

TEST_F(E2eTest, HostileEstimatorDegradesPlans) {
  // Constant estimates carry no ordering information: expect strictly worse
  // aggregate cost than the oracle on at least some queries.
  class ConstantEstimator : public ce::Estimator {
   public:
    std::string Name() const override { return "Const"; }
    Status Build(const storage::Database&,
                 const std::vector<query::LabeledQuery>&) override {
      return Status::OK();
    }
    double EstimateCardinality(const query::Query&) override { return 1000; }
    uint64_t SizeBytes() const override { return 0; }
  };
  ConstantEstimator constant;
  WorkloadPlanQuality agg = EvaluateWorkloadPlanQuality(
      *db_, *executor_, *planner_, &constant, workload_);
  EXPECT_GT(agg.max_p_error, 1.0);
}

}  // namespace
}  // namespace eval
}  // namespace lce
