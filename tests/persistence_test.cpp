// Model persistence: trained query-driven estimators serialize their weights
// and restore into a Prepare()d instance with identical behaviour.

#include <sstream>

#include <gtest/gtest.h>

#include "src/ce/query_driven/flat_models.h"
#include "src/ce/query_driven/recurrent_models.h"
#include "src/ce/query_driven/set_models.h"
#include "src/storage/datagen.h"
#include "src/workload/generator.h"

namespace lce {
namespace ce {
namespace {

struct Env {
  std::unique_ptr<storage::Database> db;
  std::vector<query::LabeledQuery> train;
  std::vector<query::LabeledQuery> test;
};

const Env& SharedEnv() {
  static Env* env = [] {
    auto* e = new Env();
    e->db = storage::datagen::Generate(storage::datagen::DmvLikeSpec(0.1), 3);
    workload::WorkloadOptions opts;
    opts.max_joins = 0;
    workload::WorkloadGenerator gen(e->db.get(), opts);
    Rng rng(4);
    e->train = gen.GenerateLabeled(300, &rng);
    e->test = gen.GenerateLabeled(30, &rng);
    return e;
  }();
  return *env;
}

NeuralOptions SmallOptions() {
  NeuralOptions o;
  o.epochs = 5;
  o.hidden_dim = 16;
  return o;
}

template <typename Model>
void RoundTrip() {
  const Env& env = SharedEnv();
  Model trained(SmallOptions());
  ASSERT_TRUE(trained.Build(*env.db, env.train).ok());

  std::stringstream buffer;
  ASSERT_TRUE(trained.SaveModel(&buffer).ok());

  Model restored(SmallOptions());
  ASSERT_TRUE(restored.Prepare(*env.db).ok());
  ASSERT_TRUE(restored.LoadModel(&buffer).ok());

  for (const auto& lq : env.test) {
    EXPECT_DOUBLE_EQ(restored.EstimateCardinality(lq.q),
                     trained.EstimateCardinality(lq.q));
  }
}

TEST(PersistenceTest, FcnRoundTrips) { RoundTrip<FcnEstimator>(); }
TEST(PersistenceTest, LinearRoundTrips) { RoundTrip<LinearEstimator>(); }
TEST(PersistenceTest, MscnRoundTrips) { RoundTrip<MscnEstimator>(); }
TEST(PersistenceTest, FcnPoolRoundTrips) { RoundTrip<FcnPoolEstimator>(); }
TEST(PersistenceTest, RnnRoundTrips) { RoundTrip<RnnEstimator>(); }
TEST(PersistenceTest, LstmRoundTrips) { RoundTrip<LstmEstimator>(); }

TEST(PersistenceTest, SaveWithoutBuildFails) {
  FcnEstimator est(SmallOptions());
  std::stringstream buffer;
  EXPECT_FALSE(est.SaveModel(&buffer).ok());
}

TEST(PersistenceTest, LoadWithoutPrepareFails) {
  FcnEstimator est(SmallOptions());
  std::stringstream buffer;
  EXPECT_FALSE(est.LoadModel(&buffer).ok());
}

TEST(PersistenceTest, LoadRejectsMismatchedArchitecture) {
  const Env& env = SharedEnv();
  FcnEstimator trained(SmallOptions());
  ASSERT_TRUE(trained.Build(*env.db, env.train).ok());
  std::stringstream buffer;
  ASSERT_TRUE(trained.SaveModel(&buffer).ok());

  NeuralOptions wider = SmallOptions();
  wider.hidden_dim = 32;
  FcnEstimator other(wider);
  ASSERT_TRUE(other.Prepare(*env.db).ok());
  EXPECT_FALSE(other.LoadModel(&buffer).ok());
}

TEST(PersistenceTest, LoadedModelSupportsFurtherUpdates) {
  const Env& env = SharedEnv();
  FcnEstimator trained(SmallOptions());
  ASSERT_TRUE(trained.Build(*env.db, env.train).ok());
  std::stringstream buffer;
  ASSERT_TRUE(trained.SaveModel(&buffer).ok());

  FcnEstimator restored(SmallOptions());
  ASSERT_TRUE(restored.Prepare(*env.db).ok());
  ASSERT_TRUE(restored.LoadModel(&buffer).ok());
  EXPECT_TRUE(restored.UpdateWithQueries(env.test).ok());
}

}  // namespace
}  // namespace ce
}  // namespace lce
