#include "src/exec/executor.h"

#include <functional>

#include <gtest/gtest.h>

#include "src/storage/datagen.h"
#include "src/workload/generator.h"

namespace lce {
namespace exec {
namespace {

// Brute-force oracle: nested loops over filtered row sets, checking every
// join edge. Exponential, so only used on tiny databases.
double BruteForceCount(const storage::Database& db, const query::Query& q) {
  std::vector<std::vector<uint64_t>> filtered;
  for (int t : q.tables) {
    std::vector<uint8_t> bitmap = FilterBitmap(db, q, t);
    std::vector<uint64_t> rows;
    for (uint64_t r = 0; r < bitmap.size(); ++r) {
      if (bitmap[r]) rows.push_back(r);
    }
    filtered.push_back(std::move(rows));
  }
  const auto& schema = db.schema();
  double count = 0;
  std::vector<uint64_t> pick(q.tables.size());
  std::function<void(size_t)> recurse = [&](size_t i) {
    if (i == q.tables.size()) {
      for (int e : q.join_edges) {
        const storage::JoinEdge& je = schema.joins[e];
        int lt = schema.TableIndex(je.left_table);
        int rt = schema.TableIndex(je.right_table);
        int lc = schema.tables[lt].ColumnIndex(je.left_column);
        int rc = schema.tables[rt].ColumnIndex(je.right_column);
        size_t lpos = 0, rpos = 0;
        for (size_t p = 0; p < q.tables.size(); ++p) {
          if (q.tables[p] == lt) lpos = p;
          if (q.tables[p] == rt) rpos = p;
        }
        if (db.table(lt).column(lc)[pick[lpos]] !=
            db.table(rt).column(rc)[pick[rpos]]) {
          return;
        }
      }
      count += 1;
      return;
    }
    for (uint64_t r : filtered[i]) {
      pick[i] = r;
      recurse(i + 1);
    }
  };
  recurse(0);
  return count;
}

// Reference implementation the word-wide CountSet must agree with.
uint64_t CountSetNaive(const std::vector<uint8_t>& bitmap) {
  uint64_t n = 0;
  for (uint8_t b : bitmap) n += b;
  return n;
}

TEST(CountSetTest, MatchesNaiveLoopOnOddLengths) {
  Rng rng(11);
  // Sweep lengths around the 8-byte word boundary, plus larger odd sizes, so
  // both the word loop and the scalar tail are exercised at every remainder.
  for (size_t len : {0u, 1u, 2u, 7u, 8u, 9u, 15u, 16u, 17u, 63u, 64u, 65u,
                     1001u, 4093u}) {
    std::vector<uint8_t> bitmap(len);
    for (auto& b : bitmap) b = rng.Bernoulli(0.4) ? 1 : 0;
    EXPECT_EQ(CountSet(bitmap), CountSetNaive(bitmap)) << "len=" << len;
  }
  EXPECT_EQ(CountSet(std::vector<uint8_t>(129, 1)), 129u);
  EXPECT_EQ(CountSet(std::vector<uint8_t>(77, 0)), 0u);
}

TEST(ExecutorDeathTest, SubsetCardinalityRejectsEmptyTableSet) {
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(100, 10, 0.0, 0.0), 5);
  Executor ex(db.get());
  query::Query q;
  q.tables = {0};
  EXPECT_DEATH(ex.SubsetCardinality(q, {}), "non-empty table subset");
}

TEST(ExecutorTest, SingleTableCountMatchesBitmap) {
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(5000, 40, 1.0, 0.5), 3);
  Executor ex(db.get());
  query::Query q;
  q.tables = {0};
  q.predicates = {{{0, 0}, 5, 20}, {{0, 1}, 0, 10}};
  double card = ex.Cardinality(q);
  EXPECT_DOUBLE_EQ(card,
                   static_cast<double>(CountSet(FilterBitmap(*db, q, 0))));
}

TEST(ExecutorTest, UnfilteredScanCountsAllRows) {
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(1234, 10, 0.0, 0.0), 4);
  Executor ex(db.get());
  query::Query q;
  q.tables = {0};
  EXPECT_DOUBLE_EQ(ex.Cardinality(q), 1234.0);
}

// Property sweep: message-passing counts must equal brute force on small
// random databases across seeds and join shapes.
class ExecutorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorPropertyTest, TreeCountMatchesBruteForce) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  // Tiny 3-table chain so brute force stays cheap.
  storage::datagen::DatabaseGenSpec spec;
  spec.name = "tiny";
  spec.tables = {
      {.name = "a",
       .rows = 40,
       .columns = {{.name = "ak", .is_key = true},
                   {.name = "av", .domain = 6, .zipf_theta = 0.7}}},
      {.name = "b",
       .rows = 60,
       .columns = {{.name = "bk", .is_key = true},
                   {.name = "a_fk", .ref_table = "a", .zipf_theta = 0.5},
                   {.name = "bv", .domain = 8, .zipf_theta = 0.3}}},
      {.name = "c",
       .rows = 80,
       .columns = {{.name = "b_fk", .ref_table = "b", .zipf_theta = 0.8},
                   {.name = "cv", .domain = 5, .zipf_theta = 1.0}}},
  };
  spec.joins = {{"a", "ak", "b", "a_fk"}, {"b", "bk", "c", "b_fk"}};
  auto db = storage::datagen::Generate(spec, seed);
  Executor ex(db.get());

  workload::WorkloadOptions wopts;
  wopts.max_joins = 2;
  wopts.min_predicates = 0;
  wopts.max_predicates = 3;
  wopts.min_cardinality = 0;
  workload::WorkloadGenerator gen(db.get(), wopts);
  Rng rng(seed * 31 + 1);
  for (int i = 0; i < 25; ++i) {
    query::Query q = gen.GenerateQuery(&rng);
    ASSERT_TRUE(query::Validate(q, *db).ok())
        << query::ToSql(q, db->schema());
    EXPECT_DOUBLE_EQ(ex.Cardinality(q), BruteForceCount(*db, q))
        << query::ToSql(q, db->schema());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Range(1, 9));

TEST(ExecutorTest, SubsetCardinalityMatchesRestrictedQuery) {
  auto db =
      storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.02), 9);
  Executor ex(db.get());
  query::Query q;
  q.tables = {0, 1, 2};
  q.join_edges = {0, 1};
  q.predicates = {{{0, 1}, 0, 3}, {{1, 1}, 0, 500}};
  for (const std::vector<int>& subset :
       {std::vector<int>{0}, {0, 1}, {0, 2}, {0, 1, 2}}) {
    query::Query sub = query::Restrict(q, subset, db->schema());
    EXPECT_DOUBLE_EQ(ex.SubsetCardinality(q, subset), ex.Cardinality(sub));
  }
}

TEST(ExecutorTest, StarJoinWithMultipleChildren) {
  auto db =
      storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.01), 10);
  Executor ex(db.get());
  // title joined with three fact tables simultaneously.
  query::Query q;
  q.tables = {0, 1, 2, 3};
  q.join_edges = {0, 1, 2};
  double all = ex.Cardinality(q);
  EXPECT_GT(all, 0);
  // Adding a restrictive predicate can only shrink the count.
  q.predicates = {{{0, 1}, 0, 1}};
  EXPECT_LE(ex.Cardinality(q), all);
}

}  // namespace
}  // namespace exec
}  // namespace lce
