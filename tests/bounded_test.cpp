#include "src/ce/bounded.h"

#include <gtest/gtest.h>

#include "src/ce/factory.h"
#include "src/eval/metrics.h"
#include "src/storage/datagen.h"
#include "src/workload/generator.h"

namespace lce {
namespace ce {
namespace {

struct Env {
  std::unique_ptr<storage::Database> db;
  std::vector<query::LabeledQuery> train;
  std::vector<query::LabeledQuery> test;
};

const Env& SharedEnv() {
  static Env* env = [] {
    auto* e = new Env();
    e->db = storage::datagen::Generate(storage::datagen::DmvLikeSpec(0.1), 5);
    workload::WorkloadOptions opts;
    opts.max_joins = 0;
    workload::WorkloadGenerator gen(e->db.get(), opts);
    Rng rng(6);
    e->train = gen.GenerateLabeled(400, &rng);
    e->test = gen.GenerateLabeled(60, &rng);
    return e;
  }();
  return *env;
}

NeuralOptions Fast() {
  NeuralOptions o;
  o.epochs = 6;
  o.hidden_dim = 16;
  return o;
}

TEST(BoundedEstimatorTest, EstimatesStayInsideEnvelope) {
  const Env& env = SharedEnv();
  double envelope = 4.0;
  BoundedEstimator bounded(MakeEstimator("FCN", Fast()),
                           MakeEstimator("Histogram"), envelope);
  ASSERT_TRUE(bounded.Build(*env.db, env.train).ok());
  for (const auto& lq : env.test) {
    double reference = bounded.reference()->EstimateCardinality(lq.q);
    double est = bounded.EstimateCardinality(lq.q);
    EXPECT_LE(est, reference * envelope * (1 + 1e-9));
    EXPECT_GE(est, std::max(1.0, reference / envelope) * (1 - 1e-9));
  }
}

TEST(BoundedEstimatorTest, WideEnvelopeIsTransparent) {
  const Env& env = SharedEnv();
  auto raw = MakeEstimator("FCN", Fast());
  ASSERT_TRUE(raw->Build(*env.db, env.train).ok());
  BoundedEstimator bounded(MakeEstimator("FCN", Fast()),
                           MakeEstimator("Histogram"), 1e12);
  ASSERT_TRUE(bounded.Build(*env.db, env.train).ok());
  for (const auto& lq : env.test) {
    EXPECT_DOUBLE_EQ(bounded.EstimateCardinality(lq.q),
                     raw->EstimateCardinality(lq.q));
  }
}

TEST(BoundedEstimatorTest, MaxQErrorBoundedByReferenceTimesEnvelope) {
  const Env& env = SharedEnv();
  double envelope = 4.0;
  BoundedEstimator bounded(MakeEstimator("FCN", Fast()),
                           MakeEstimator("Histogram"), envelope);
  ASSERT_TRUE(bounded.Build(*env.db, env.train).ok());
  for (const auto& lq : env.test) {
    double ref_q = eval::QError(
        bounded.reference()->EstimateCardinality(lq.q), lq.cardinality);
    double bounded_q =
        eval::QError(bounded.EstimateCardinality(lq.q), lq.cardinality);
    EXPECT_LE(bounded_q, ref_q * envelope * (1 + 1e-9));
  }
}

TEST(BoundedEstimatorTest, NameAndSizeComposeParts) {
  BoundedEstimator bounded(MakeEstimator("FCN", Fast()),
                           MakeEstimator("Histogram"), 2.0);
  EXPECT_EQ(bounded.Name(), "FCN+Bound");
  const Env& env = SharedEnv();
  ASSERT_TRUE(bounded.Build(*env.db, env.train).ok());
  EXPECT_EQ(bounded.SizeBytes(),
            bounded.inner()->SizeBytes() + bounded.reference()->SizeBytes());
}

TEST(BoundedEstimatorTest, UpdateWithDataRefreshesReference) {
  storage::datagen::DatabaseGenSpec spec =
      storage::datagen::SyntheticPairSpec(6000, 32, 0.0, 0.0);
  auto db = storage::datagen::Generate(spec, 7);
  workload::WorkloadOptions opts;
  opts.max_joins = 0;
  workload::WorkloadGenerator gen(db.get(), opts);
  Rng rng(8);
  auto train = gen.GenerateLabeled(200, &rng);
  BoundedEstimator bounded(MakeEstimator("FCN", Fast()),
                           MakeEstimator("Histogram"), 2.0);
  ASSERT_TRUE(bounded.Build(*db, train).ok());
  storage::datagen::AppendShifted(db.get(), spec, 1.0, 0.0, 0.0, 9);
  EXPECT_TRUE(bounded.UpdateWithData(*db).ok());
}

}  // namespace
}  // namespace ce
}  // namespace lce
