#include "src/ce/edge_selectivity.h"

#include <gtest/gtest.h>

#include "src/ce/data_driven/spn.h"
#include "src/eval/metrics.h"
#include "src/exec/executor.h"
#include "src/storage/datagen.h"
#include "src/workload/generator.h"

namespace lce {
namespace ce {
namespace {

TEST(EdgeSelectivityTest, MatchesExactPairwiseJoinCounts) {
  auto db = storage::datagen::Generate(storage::datagen::TpchLikeSpec(0.03), 1);
  exec::Executor ex(db.get());
  std::vector<double> rho = ComputeEdgeSelectivities(*db);
  ASSERT_EQ(rho.size(), db->schema().joins.size());
  for (size_t j = 0; j < rho.size(); ++j) {
    const auto& e = db->schema().joins[j];
    int lt = db->schema().TableIndex(e.left_table);
    int rt = db->schema().TableIndex(e.right_table);
    query::Query pair;
    pair.tables = {std::min(lt, rt), std::max(lt, rt)};
    pair.join_edges = {static_cast<int>(j)};
    double expected = ex.Cardinality(pair) /
                      (static_cast<double>(db->table(lt).num_rows()) *
                       static_cast<double>(db->table(rt).num_rows()));
    EXPECT_DOUBLE_EQ(rho[j], expected);
  }
}

TEST(EdgeSelectivityTest, ExactOnUnfilteredJoins) {
  // With no predicates, the edge-selectivity combination is exact on
  // two-table joins by construction.
  auto db = storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.03), 2);
  exec::Executor ex(db.get());
  std::vector<double> rho = ComputeEdgeSelectivities(*db);
  query::Query q;
  q.tables = {0, 1};
  q.join_edges = {0};
  double est = CombineWithEdgeSelectivities(
      db->schema(), q,
      [&](int t) { return static_cast<double>(db->table(t).num_rows()); },
      rho);
  EXPECT_NEAR(est, ex.Cardinality(q), ex.Cardinality(q) * 1e-9);
}

TEST(EdgeSelectivityTest, CoincidesWithDistinctCountOnCleanPkFk) {
  // On PK-FK schemas rho_e = 1/|PK table| = 1/max(ndv): the two join
  // combiners must agree estimate-for-estimate.
  auto db =
      storage::datagen::Generate(storage::datagen::StatsLikeSpec(0.06), 3);
  workload::WorkloadOptions opts;
  opts.max_joins = 2;
  workload::WorkloadGenerator gen(db.get(), opts);
  Rng rng(4);
  auto test = gen.GenerateLabeled(40, &rng);

  SpnTableModel::Options plain;
  SpnEstimator baseline(plain);
  ASSERT_TRUE(baseline.Build(*db, {}).ok());
  SpnTableModel::Options with_edges;
  with_edges.use_edge_selectivity = true;
  SpnEstimator upgraded(with_edges);
  ASSERT_TRUE(upgraded.Build(*db, {}).ok());
  for (const auto& lq : test) {
    EXPECT_NEAR(upgraded.EstimateCardinality(lq.q),
                baseline.EstimateCardinality(lq.q),
                baseline.EstimateCardinality(lq.q) * 1e-6);
  }
}

TEST(FanoutCorrectionTest, FactorIsOneWithoutPkSidePredicates) {
  auto db = storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.03), 5);
  FanoutCorrection correction;
  correction.Build(*db, FanoutCorrection::Options{});
  query::Query q;
  q.tables = {0, 1};
  q.join_edges = {0};
  q.predicates = {{{1, 1}, 0, 100}};  // fact-side predicate only
  EXPECT_DOUBLE_EQ(correction.CorrectionFactor(q), 1.0);
}

// A schema where a dimension attribute is monotone in the key, so range
// predicates on it directly select high- or low-fanout rows: the regime the
// fanout correction targets.
storage::datagen::DatabaseGenSpec FanoutCorrelatedSpec() {
  storage::datagen::DatabaseGenSpec spec;
  spec.name = "web";
  spec.tables = {
      {.name = "users",
       .rows = 6000,
       .columns = {{.name = "u_id", .is_key = true},
                   {.name = "u_signup_day", .domain = 400,
                    .monotone_of_key = true},
                   {.name = "u_country", .domain = 30, .zipf_theta = 0.8}}},
      {.name = "events",
       .rows = 60000,
       .columns = {{.name = "e_user_id", .ref_table = "users",
                    .zipf_theta = 1.4},
                   {.name = "e_type", .domain = 12, .zipf_theta = 0.6}}},
  };
  spec.joins = {{"users", "u_id", "events", "e_user_id"}};
  return spec;
}

TEST(FanoutCorrectionTest, ImprovesSpnWhenPredicatesCorrelateWithFanout) {
  auto db = storage::datagen::Generate(FanoutCorrelatedSpec(), 6);
  exec::Executor ex(db.get());
  // Queries: join filtered on early/late signup windows. Early users (low
  // ids) carry most of the Zipf fanout mass.
  std::vector<query::LabeledQuery> test;
  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    query::Query q;
    q.tables = {0, 1};
    q.join_edges = {0};
    storage::Value lo = rng.UniformInt(0, 360);
    q.predicates = {{{0, 1}, lo, lo + 39}};  // a 40-day signup window
    double card = ex.Cardinality(q);
    if (card >= 1) test.push_back({q, card});
  }
  ASSERT_GT(test.size(), 40u);

  SpnEstimator baseline{SpnTableModel::Options{}};
  ASSERT_TRUE(baseline.Build(*db, {}).ok());
  SpnTableModel::Options corrected_opts;
  corrected_opts.use_fanout_correction = true;
  SpnEstimator corrected(corrected_opts);
  ASSERT_TRUE(corrected.Build(*db, {}).ok());

  double base_g = eval::EvaluateAccuracy(&baseline, test).summary.geo_mean;
  double corr_g = eval::EvaluateAccuracy(&corrected, test).summary.geo_mean;
  EXPECT_LT(corr_g, base_g * 0.7);  // a substantial, not marginal, win
}

}  // namespace
}  // namespace ce
}  // namespace lce
