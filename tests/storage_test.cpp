#include <gtest/gtest.h>

#include "src/storage/database.h"
#include "src/storage/dictionary.h"
#include "src/storage/table.h"

namespace lce {
namespace storage {
namespace {

TableSchema TwoColSchema() {
  return TableSchema{"t", {{"id", true}, {"v", false}}};
}

TEST(TableTest, AppendRowAndStats) {
  Table t(TwoColSchema());
  t.AppendRow({0, 5});
  t.AppendRow({1, 5});
  t.AppendRow({2, 9});
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_FALSE(t.finalized());
  t.Finalize();
  EXPECT_TRUE(t.finalized());
  EXPECT_EQ(t.stats(1).min, 5);
  EXPECT_EQ(t.stats(1).max, 9);
  EXPECT_EQ(t.stats(1).distinct, 2u);
  EXPECT_EQ(t.stats(0).distinct, 3u);
}

TEST(TableTest, AppendColumnsBulk) {
  Table t(TwoColSchema());
  t.AppendColumns({{0, 1, 2}, {10, 20, 30}});
  t.AppendColumns({{3}, {40}});
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.Row(3), (std::vector<Value>{3, 40}));
  EXPECT_EQ(t.SizeBytes(), 4u * 2u * sizeof(Value));
}

TEST(TableTest, AppendInvalidatesFinalize) {
  Table t(TwoColSchema());
  t.AppendRow({0, 1});
  t.Finalize();
  t.AppendRow({1, 100});
  EXPECT_FALSE(t.finalized());
  t.Finalize();
  EXPECT_EQ(t.stats(1).max, 100);
}

TEST(TableTest, ColumnIndexLookup) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.ColumnIndex("v").ok());
  EXPECT_EQ(t.ColumnIndex("v").value(), 1);
  EXPECT_FALSE(t.ColumnIndex("missing").ok());
  EXPECT_EQ(t.ColumnIndex("missing").status().code(), StatusCode::kNotFound);
}

DatabaseSchema ChainSchema() {
  DatabaseSchema s;
  s.name = "chain";
  s.tables = {TableSchema{"a", {{"ak", true}, {"av", false}}},
              TableSchema{"b", {{"bk", true}, {"a_fk", false}}},
              TableSchema{"c", {{"b_fk", false}, {"cv", false}}}};
  s.joins = {{"a", "ak", "b", "a_fk"}, {"b", "bk", "c", "b_fk"}};
  return s;
}

TEST(DatabaseTest, JoinNavigation) {
  Database db(ChainSchema());
  EXPECT_EQ(db.JoinBetween(0, 1), 0);
  EXPECT_EQ(db.JoinBetween(1, 2), 1);
  EXPECT_EQ(db.JoinBetween(0, 2), -1);
  EXPECT_EQ(db.IncidentJoins(1), (std::vector<int>{0, 1}));
}

TEST(DatabaseTest, ConnectivityOnChain) {
  Database db(ChainSchema());
  EXPECT_TRUE(db.IsConnected({0}));
  EXPECT_TRUE(db.IsConnected({0, 1}));
  EXPECT_TRUE(db.IsConnected({0, 1, 2}));
  EXPECT_FALSE(db.IsConnected({0, 2}));  // a and c are not adjacent
  EXPECT_FALSE(db.IsConnected({}));
}

TEST(DatabaseTest, FindTable) {
  Database db(ChainSchema());
  ASSERT_TRUE(db.FindTable("b").ok());
  EXPECT_EQ(db.FindTable("b").value()->name(), "b");
  EXPECT_FALSE(db.FindTable("zzz").ok());
}

TEST(DatabaseSchemaTest, GlobalColumnIndex) {
  DatabaseSchema s = ChainSchema();
  EXPECT_EQ(s.TotalColumns(), 6);
  EXPECT_EQ(s.GlobalColumnIndex("a", "ak"), 0);
  EXPECT_EQ(s.GlobalColumnIndex("b", "a_fk"), 3);
  EXPECT_EQ(s.GlobalColumnIndex("c", "cv"), 5);
  EXPECT_EQ(s.GlobalColumnIndex("c", "nope"), -1);
  EXPECT_EQ(s.GlobalColumnIndex("nope", "cv"), -1);
}

TEST(DictionaryTest, EncodeDecodeRoundTrip) {
  Dictionary dict;
  Value a = dict.Encode("drama");
  Value b = dict.Encode("comedy");
  Value a2 = dict.Encode("drama");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.size(), 2u);
  ASSERT_TRUE(dict.Decode(b).ok());
  EXPECT_EQ(dict.Decode(b).value(), "comedy");
  EXPECT_FALSE(dict.Decode(99).ok());
  ASSERT_TRUE(dict.Lookup("drama").ok());
  EXPECT_EQ(dict.Lookup("drama").value(), a);
  EXPECT_FALSE(dict.Lookup("horror").ok());
}

TEST(DictionaryTest, IdsAreDense) {
  Dictionary dict;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dict.Encode("s" + std::to_string(i)), i);
  }
}

}  // namespace
}  // namespace storage
}  // namespace lce
