#include "src/workload/generator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/storage/datagen.h"

namespace lce {
namespace workload {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = storage::datagen::Generate(storage::datagen::TpchLikeSpec(0.05), 1);
  }
  std::unique_ptr<storage::Database> db_;
};

TEST_F(WorkloadTest, GeneratedQueriesAreValid) {
  WorkloadOptions opts;
  opts.max_joins = 3;
  WorkloadGenerator gen(db_.get(), opts);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    query::Query q = gen.GenerateQuery(&rng);
    EXPECT_TRUE(query::Validate(q, *db_).ok())
        << query::ToSql(q, db_->schema());
  }
}

TEST_F(WorkloadTest, LabeledQueriesMatchExecutor) {
  WorkloadGenerator gen(db_.get(), WorkloadOptions{});
  Rng rng(3);
  auto labeled = gen.GenerateLabeled(30, &rng);
  exec::Executor ex(db_.get());
  for (const auto& lq : labeled) {
    EXPECT_DOUBLE_EQ(lq.cardinality, ex.Cardinality(lq.q));
    EXPECT_GE(lq.cardinality, 1.0);  // min_cardinality default
  }
}

TEST_F(WorkloadTest, MaxJoinsZeroYieldsSingleTableQueries) {
  WorkloadOptions opts;
  opts.max_joins = 0;
  WorkloadGenerator gen(db_.get(), opts);
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(gen.GenerateQuery(&rng).tables.size(), 1u);
  }
}

TEST_F(WorkloadTest, PredicateCountRespectsBounds) {
  WorkloadOptions opts;
  opts.min_predicates = 2;
  opts.max_predicates = 3;
  opts.max_joins = 1;
  WorkloadGenerator gen(db_.get(), opts);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    query::Query q = gen.GenerateQuery(&rng);
    // The requested minimum is capped by the available non-key columns of
    // the chosen tables (e.g. supplier has a single non-key attribute).
    size_t available = 0;
    for (int t : q.tables) {
      for (const auto& col : db_->schema().tables[t].columns) {
        if (!col.is_key) ++available;
      }
    }
    EXPECT_GE(q.predicates.size(), std::min<size_t>(2, available));
    EXPECT_LE(q.predicates.size(), 3u);
  }
}

TEST_F(WorkloadTest, PredicatesNeverTouchKeyColumns) {
  WorkloadGenerator gen(db_.get(), WorkloadOptions{});
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    query::Query q = gen.GenerateQuery(&rng);
    for (const auto& p : q.predicates) {
      EXPECT_FALSE(
          db_->schema().tables[p.col.table].columns[p.col.column].is_key);
    }
  }
}

TEST_F(WorkloadTest, TemplateWhitelistIsRespected) {
  WorkloadOptions opts;
  opts.template_whitelist = {{0, 3}};  // customer ⋈ orders
  opts.max_joins = 3;
  WorkloadGenerator gen(db_.get(), opts);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    query::Query q = gen.GenerateQuery(&rng);
    EXPECT_EQ(q.tables, (std::vector<int>{0, 3}));
  }
}

TEST_F(WorkloadTest, EnumerateTemplatesOnTpchTree) {
  // TPC-H-like join tree: customer-orders-lineitem, part-lineitem,
  // supplier-lineitem. Connected subsets of size <= 2:
  // 5 singletons + 4 edges = 9.
  WorkloadOptions opts;
  opts.max_joins = 1;
  WorkloadGenerator gen(db_.get(), opts);
  EXPECT_EQ(gen.EnumerateTemplates().size(), 9u);

  // All sizes: subsets of a 5-node tree that are connected.
  WorkloadOptions all;
  all.max_joins = 4;
  WorkloadGenerator gen_all(db_.get(), all);
  auto templates = gen_all.EnumerateTemplates();
  for (const auto& tmpl : templates) {
    EXPECT_TRUE(db_->IsConnected(tmpl));
  }
  // Every template unique.
  std::set<std::vector<int>> unique(templates.begin(), templates.end());
  EXPECT_EQ(unique.size(), templates.size());
}

TEST_F(WorkloadTest, TemplateEdgesSpanTheTemplate) {
  WorkloadOptions opts;
  opts.max_joins = 4;
  WorkloadGenerator gen(db_.get(), opts);
  for (const auto& tmpl : gen.EnumerateTemplates()) {
    if (tmpl.size() < 2) continue;
    EXPECT_EQ(gen.TemplateEdges(tmpl).size(), tmpl.size() - 1);
  }
}

TEST_F(WorkloadTest, CenterRegionShiftsPredicateDistribution) {
  // Centers drawn from disjoint value-quantile ranges must shift the
  // predicate-center distribution toward low/high values.
  WorkloadOptions lo_opts;
  lo_opts.max_joins = 0;
  lo_opts.center_lo = 0.0;
  lo_opts.center_hi = 0.3;
  WorkloadOptions hi_opts = lo_opts;
  hi_opts.center_lo = 0.7;
  hi_opts.center_hi = 1.0;
  WorkloadGenerator lo_gen(db_.get(), lo_opts);
  WorkloadGenerator hi_gen(db_.get(), hi_opts);
  Rng rng1(8), rng2(8);
  double lo_sum = 0, hi_sum = 0;
  int lo_n = 0, hi_n = 0;
  for (int i = 0; i < 300; ++i) {
    for (const auto& p : lo_gen.GenerateQuery(&rng1).predicates) {
      lo_sum += static_cast<double>(p.lo);
      ++lo_n;
    }
    for (const auto& p : hi_gen.GenerateQuery(&rng2).predicates) {
      hi_sum += static_cast<double>(p.lo);
      ++hi_n;
    }
  }
  ASSERT_GT(lo_n, 0);
  ASSERT_GT(hi_n, 0);
  EXPECT_LT(lo_sum / lo_n, hi_sum / hi_n);
}

TEST_F(WorkloadTest, DeterministicAcrossRuns) {
  WorkloadGenerator gen(db_.get(), WorkloadOptions{});
  Rng rng1(42), rng2(42);
  auto a = gen.GenerateLabeled(10, &rng1);
  auto b = gen.GenerateLabeled(10, &rng2);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(query::ToSql(a[i].q, db_->schema()),
              query::ToSql(b[i].q, db_->schema()));
    EXPECT_DOUBLE_EQ(a[i].cardinality, b[i].cardinality);
  }
}

}  // namespace
}  // namespace workload
}  // namespace lce
