// Zoo-wide invariants: every estimator, on every study database shape, must
// produce finite estimates >= 1 bounded by the join-size upper bound, report
// a positive footprint, and behave deterministically for a fixed seed.

#include <cmath>

#include <gtest/gtest.h>

#include "src/ce/factory.h"
#include "src/storage/datagen.h"
#include "src/workload/generator.h"

namespace lce {
namespace ce {
namespace {

struct ZooCase {
  std::string estimator;
  int db_index;  // 0 = DMV-like (single table), 1 = TPC-H-like (snowflake)
};

std::string CaseName(const ::testing::TestParamInfo<ZooCase>& info) {
  std::string name = info.param.estimator +
                     (info.param.db_index == 0 ? "_dmv" : "_tpch");
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

struct Env {
  std::unique_ptr<storage::Database> db;
  std::vector<query::LabeledQuery> train;
  std::vector<query::LabeledQuery> test;
  double join_upper_bound = 1;
};

const Env& GetEnv(int index) {
  static Env* envs[2] = {nullptr, nullptr};
  if (envs[index] == nullptr) {
    auto* e = new Env();
    e->db = storage::datagen::Generate(
        index == 0
            ? storage::datagen::DmvLikeSpec(0.08)
            : storage::datagen::TpchLikeSpec(0.04),
        31 + index);
    workload::WorkloadOptions opts;
    opts.max_joins = index == 0 ? 0 : 2;
    workload::WorkloadGenerator gen(e->db.get(), opts);
    Rng rng(32);
    e->train = gen.GenerateLabeled(250, &rng);
    e->test = gen.GenerateLabeled(40, &rng);
    // Matches the label normalizer: log(prod(rows + 1)) is the ceiling a
    // saturated sigmoid model can emit.
    e->join_upper_bound = 1;
    for (int t = 0; t < e->db->num_tables(); ++t) {
      e->join_upper_bound *=
          static_cast<double>(e->db->table(t).num_rows()) + 1.0;
    }
    envs[index] = e;
  }
  return *envs[index];
}

NeuralOptions Fast() {
  NeuralOptions o;
  o.epochs = 4;
  o.hidden_dim = 16;
  return o;
}

class ZooPropertyTest : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ZooPropertyTest, EstimatesAreSaneAndDeterministic) {
  const Env& env = GetEnv(GetParam().db_index);
  auto a = MakeEstimator(GetParam().estimator, Fast(), 11);
  auto b = MakeEstimator(GetParam().estimator, Fast(), 11);
  ASSERT_TRUE(a->Build(*env.db, env.train).ok()) << GetParam().estimator;
  ASSERT_TRUE(b->Build(*env.db, env.train).ok());
  for (const auto& lq : env.test) {
    double ea = a->EstimateCardinality(lq.q);
    EXPECT_TRUE(std::isfinite(ea));
    EXPECT_GE(ea, 1.0);
    EXPECT_LE(ea, env.join_upper_bound * (1 + 1e-9));
    // Same seed, same training, same query -> identical estimate. The only
    // exception would be wall-clock dependence, which no estimator has.
    EXPECT_DOUBLE_EQ(ea, b->EstimateCardinality(lq.q))
        << GetParam().estimator;
  }
  // Wander Join on a join-free schema legitimately stores no indexes.
  if (!(GetParam().estimator == "WanderJoin" && GetParam().db_index == 0)) {
    EXPECT_GT(a->SizeBytes(), 0u);
  }
}

std::vector<ZooCase> AllCases() {
  std::vector<ZooCase> cases;
  for (const std::string& name : AllEstimatorNames()) {
    cases.push_back({name, 0});
    cases.push_back({name, 1});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(EveryEstimatorEveryShape, ZooPropertyTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace ce
}  // namespace lce
