#include "src/util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/gbdt/gbdt.h"
#include "src/nn/adam.h"
#include "src/nn/mlp.h"
#include "src/storage/datagen.h"
#include "src/util/rng.h"
#include "src/workload/generator.h"

namespace lce {
namespace parallel {
namespace {

// Restores the default pool after every test so ordering cannot leak thread
// counts across tests.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { SetThreadCountForTesting(0); }
};

TEST_F(ParallelTest, PoolStartupRunsSubmittedTasksBeforeShutdown) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor drains the queue and joins the workers.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST_F(ParallelTest, SingleLanePoolRunsTasksInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  int ran = 0;
  pool.Submit([&ran] { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST_F(ParallelTest, EmptyRangeNeverInvokesBody) {
  SetThreadCountForTesting(4);
  std::atomic<int> calls{0};
  ParallelFor(5, 5, 2, [&](int64_t, int64_t) { calls.fetch_add(1); });
  ParallelFor(7, 3, 2, [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ParallelTest, RangeSmallerThanGrainIsOneChunk) {
  SetThreadCountForTesting(4);
  std::atomic<int> calls{0};
  int64_t seen_begin = -1, seen_end = -1;
  ParallelFor(2, 7, 100, [&](int64_t b, int64_t e) {
    calls.fetch_add(1);
    seen_begin = b;
    seen_end = e;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin, 2);
  EXPECT_EQ(seen_end, 7);
}

TEST_F(ParallelTest, ChunksPartitionTheRangeExactly) {
  SetThreadCountForTesting(4);
  std::vector<std::atomic<int>> hits(103);
  ParallelFor(0, 103, 7, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelTest, NonPositiveGrainIsClampedToOne) {
  SetThreadCountForTesting(2);
  std::atomic<int> calls{0};
  ParallelFor(0, 5, 0, [&](int64_t b, int64_t e) {
    EXPECT_EQ(e, b + 1);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 5);
}

TEST_F(ParallelTest, ExceptionPropagatesToCaller) {
  for (int threads : {1, 4}) {
    SetThreadCountForTesting(threads);
    EXPECT_THROW(
        ParallelFor(0, 64, 1,
                    [](int64_t b, int64_t) {
                      if (b == 31) throw std::runtime_error("chunk failure");
                    }),
        std::runtime_error)
        << "threads=" << threads;
  }
}

TEST_F(ParallelTest, NestedParallelForFromWorkerRunsInline) {
  SetThreadCountForTesting(4);
  std::atomic<int> total{0};
  ParallelFor(0, 8, 1, [&](int64_t, int64_t) {
    ParallelFor(0, 8, 1, [&](int64_t b, int64_t e) {
      total.fetch_add(static_cast<int>(e - b));
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST_F(ParallelTest, ReduceCombinesChunkResultsInIndexOrder) {
  // The concatenation of chunk begins is order-sensitive, so any
  // scheduling-dependent combine would scramble it.
  auto run = [] {
    return ParallelReduce<std::string>(
        0, 100, 7, std::string(),
        [](int64_t b, int64_t) { return std::to_string(b) + ";"; },
        [](std::string acc, std::string r) { return acc + r; });
  };
  SetThreadCountForTesting(1);
  std::string sequential = run();
  for (int threads : {2, 4, 8}) {
    SetThreadCountForTesting(threads);
    for (int repeat = 0; repeat < 5; ++repeat) {
      EXPECT_EQ(run(), sequential) << "threads=" << threads;
    }
  }
}

TEST_F(ParallelTest, ChunkSeedsAreDistinctAndStable) {
  EXPECT_EQ(ChunkSeed(42, 7), ChunkSeed(42, 7));
  std::vector<uint64_t> seeds;
  for (uint64_t c = 0; c < 64; ++c) seeds.push_back(ChunkSeed(123, c));
  for (size_t i = 0; i < seeds.size(); ++i) {
    for (size_t j = i + 1; j < seeds.size(); ++j) {
      EXPECT_NE(seeds[i], seeds[j]) << "chunks " << i << " and " << j;
    }
  }
  EXPECT_NE(ChunkSeed(1, 0), ChunkSeed(2, 0));
}

TEST_F(ParallelTest, SetThreadCountForTestingResizesGlobalPool) {
  SetThreadCountForTesting(3);
  EXPECT_EQ(ThreadCount(), 3);
  SetThreadCountForTesting(1);
  EXPECT_EQ(ThreadCount(), 1);
}

// Trains the same tiny MLP from the same seed at 1 and 4 threads; the
// row-blocked kernels must keep every loss bit-identical.
std::vector<float> TrainMlpLosses() {
  Rng rng(11);
  nn::Mlp mlp({8, 16, 16, 1}, nn::Activation::kRelu, nn::Activation::kSigmoid,
              &rng);
  nn::Matrix x = nn::Matrix::Randn(64, 8, 1.0f, &rng);
  nn::Matrix target(64, 1);
  for (int r = 0; r < 64; ++r) {
    target.At(r, 0) = 0.5f + 0.4f * std::sin(static_cast<float>(r));
  }
  nn::Adam adam(1e-2f);
  std::vector<float> losses;
  for (int step = 0; step < 25; ++step) {
    nn::Matrix pred = mlp.Forward(x);
    float loss = 0;
    nn::Matrix grad(64, 1);
    for (int r = 0; r < 64; ++r) {
      float d = pred.At(r, 0) - target.At(r, 0);
      loss += d * d;
      grad.At(r, 0) = 2.0f * d / 64.0f;
    }
    mlp.Backward(grad);
    adam.Step(mlp.Params());
    losses.push_back(loss / 64.0f);
  }
  return losses;
}

TEST_F(ParallelTest, MlpTrainingLossesIdenticalAtOneAndFourThreads) {
  SetThreadCountForTesting(1);
  std::vector<float> one = TrainMlpLosses();
  SetThreadCountForTesting(4);
  std::vector<float> four = TrainMlpLosses();
  ASSERT_EQ(one.size(), four.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], four[i]) << "step " << i;  // bit-identical, not NEAR
  }
}

// Fits the same GBDT from the same data at 1 and 4 threads; the
// feature-order split combine must pick identical splits everywhere.
gbdt::GradientBoosting FitGbdt() {
  gbdt::GradientBoosting::Options opts;
  opts.num_trees = 8;
  opts.max_bins = 32;
  gbdt::GradientBoosting model(opts);
  Rng rng(29);
  std::vector<std::vector<float>> rows;
  std::vector<float> targets;
  for (int i = 0; i < 500; ++i) {
    std::vector<float> row(6);
    for (auto& v : row) v = static_cast<float>(rng.Uniform(-2.0, 2.0));
    rows.push_back(row);
    targets.push_back(row[0] * 3.0f - row[3] + row[1] * row[1] +
                      static_cast<float>(rng.Gaussian()) * 0.1f);
  }
  model.Fit(rows, targets);
  return model;
}

// Labels the same workload at 1 and 4 threads: queries, cardinalities, and
// the caller Rng's final state must all be bit-identical, because parallel
// labeling replays the sequential generation stream.
std::pair<std::vector<query::LabeledQuery>, uint64_t> LabelWorkload() {
  auto db = storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.03), 3);
  workload::WorkloadOptions opts;
  opts.max_joins = 2;
  workload::WorkloadGenerator gen(db.get(), opts);
  Rng rng(17);
  auto queries = gen.GenerateLabeled(70, &rng);
  return {std::move(queries), rng.NextU64()};
}

TEST_F(ParallelTest, WorkloadLabelingIdenticalAtOneAndFourThreads) {
  SetThreadCountForTesting(1);
  auto one = LabelWorkload();
  SetThreadCountForTesting(4);
  auto four = LabelWorkload();
  ASSERT_EQ(one.first.size(), four.first.size());
  for (size_t i = 0; i < one.first.size(); ++i) {
    const query::LabeledQuery& a = one.first[i];
    const query::LabeledQuery& b = four.first[i];
    EXPECT_EQ(a.cardinality, b.cardinality) << i;
    EXPECT_EQ(a.q.tables, b.q.tables) << i;
    EXPECT_EQ(a.q.join_edges, b.q.join_edges) << i;
    ASSERT_EQ(a.q.predicates.size(), b.q.predicates.size()) << i;
    for (size_t p = 0; p < a.q.predicates.size(); ++p) {
      EXPECT_TRUE(a.q.predicates[p].col == b.q.predicates[p].col);
      EXPECT_EQ(a.q.predicates[p].lo, b.q.predicates[p].lo);
      EXPECT_EQ(a.q.predicates[p].hi, b.q.predicates[p].hi);
    }
  }
  EXPECT_EQ(one.second, four.second);  // same final Rng state
}

TEST_F(ParallelTest, GbdtSplitsIdenticalAtOneAndFourThreads) {
  SetThreadCountForTesting(1);
  gbdt::GradientBoosting one = FitGbdt();
  SetThreadCountForTesting(4);
  gbdt::GradientBoosting four = FitGbdt();
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    std::vector<float> row(6);
    for (auto& v : row) v = static_cast<float>(rng.Uniform(-2.0, 2.0));
    EXPECT_EQ(one.Predict(row), four.Predict(row)) << "probe " << i;
  }
}

}  // namespace
}  // namespace parallel
}  // namespace lce
