// Tests of the sample-based estimator family additions: KDE and Wander Join
// (plus the hash-index substrate behind Wander Join).

#include <gtest/gtest.h>

#include "src/ce/traditional/kde.h"
#include "src/ce/traditional/wander_join.h"
#include "src/eval/metrics.h"
#include "src/exec/executor.h"
#include "src/exec/hash_index.h"
#include "src/storage/datagen.h"
#include "src/workload/generator.h"

namespace lce {
namespace ce {
namespace {

TEST(HashIndexTest, LookupReturnsAllMatchingRows) {
  storage::Table t(storage::TableSchema{"t", {{"k", false}}});
  t.AppendColumns({{5, 3, 5, 7, 5}});
  t.Finalize();
  exec::HashIndex index;
  index.Build(t, 0);
  const auto* rows = index.Lookup(5);
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(*rows, (std::vector<uint32_t>{0, 2, 4}));
  EXPECT_EQ(index.Lookup(99), nullptr);
  EXPECT_GT(index.SizeBytes(), 0u);
}

TEST(KdeTest, AccurateOnSmoothSingleTableRanges) {
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(30000, 500, 0.3, 0.0), 1);
  KdeEstimator kde;
  ASSERT_TRUE(kde.Build(*db, {}).ok());
  workload::WorkloadOptions opts;
  opts.max_joins = 0;
  opts.equality_prob = 0.0;  // KDE shines on ranges
  opts.min_cardinality = 50;
  workload::WorkloadGenerator gen(db.get(), opts);
  Rng rng(2);
  auto test = gen.GenerateLabeled(120, &rng);
  auto report = eval::EvaluateAccuracy(&kde, test);
  EXPECT_LT(report.summary.p50, 1.6);
  EXPECT_LT(report.summary.geo_mean, 2.0);
}

TEST(KdeTest, EstimateBoundedAndUpdatesWithData) {
  storage::datagen::DatabaseGenSpec spec =
      storage::datagen::SyntheticPairSpec(8000, 64, 1.0, 0.5);
  auto db = storage::datagen::Generate(spec, 3);
  KdeEstimator kde;
  ASSERT_TRUE(kde.Build(*db, {}).ok());
  query::Query q;
  q.tables = {0};
  q.predicates = {{{0, 0}, 0, 31}};
  double before = kde.EstimateCardinality(q);
  EXPECT_GE(before, 1.0);
  storage::datagen::AppendShifted(db.get(), spec, 1.0, 0.0, 0.0, 4);
  ASSERT_TRUE(kde.UpdateWithData(*db).ok());
  EXPECT_GT(kde.EstimateCardinality(q), before * 1.4);
}

TEST(WanderJoinTest, UnbiasedOnTwoWayJoin) {
  auto db = storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.03), 5);
  exec::Executor ex(db.get());
  WanderJoinEstimator::Options opts;
  opts.num_walks = 4000;
  WanderJoinEstimator wj(opts);
  ASSERT_TRUE(wj.Build(*db, {}).ok());

  query::Query q;
  q.tables = {0, 1};
  q.join_edges = {0};
  double truth = ex.Cardinality(q);
  double est = wj.EstimateCardinality(q);
  ASSERT_GT(truth, 0);
  EXPECT_LT(eval::QError(est, truth), 1.15);  // unfiltered join: tight
}

TEST(WanderJoinTest, BeatsIndependentSamplingOnFilteredJoins) {
  auto db =
      storage::datagen::Generate(storage::datagen::StatsLikeSpec(0.08), 6);
  WanderJoinEstimator wj;
  ASSERT_TRUE(wj.Build(*db, {}).ok());
  workload::WorkloadOptions opts;
  opts.max_joins = 2;
  opts.min_cardinality = 10;
  workload::WorkloadGenerator gen(db.get(), opts);
  Rng rng(7);
  auto test = gen.GenerateLabeled(60, &rng);
  auto report = eval::EvaluateAccuracy(&wj, test);
  EXPECT_LT(report.summary.p50, 4.0);
  for (double qerr : report.qerrors) EXPECT_TRUE(std::isfinite(qerr));
}

TEST(WanderJoinTest, SingleTableDegeneratesToRowSampling) {
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(20000, 16, 0.3, 0.0), 8);
  exec::Executor ex(db.get());
  WanderJoinEstimator wj;
  ASSERT_TRUE(wj.Build(*db, {}).ok());
  query::Query q;
  q.tables = {0};
  q.predicates = {{{0, 0}, 0, 7}};
  double truth = ex.Cardinality(q);
  EXPECT_LT(eval::QError(wj.EstimateCardinality(q), truth), 1.3);
}

TEST(WanderJoinTest, TracksDataUpdates) {
  storage::datagen::DatabaseGenSpec spec = storage::datagen::TpchLikeSpec(0.03);
  auto db = storage::datagen::Generate(spec, 9);
  WanderJoinEstimator wj;
  ASSERT_TRUE(wj.Build(*db, {}).ok());
  query::Query q;
  q.tables = {0, 3};
  q.join_edges = {0};
  double before = wj.EstimateCardinality(q);
  storage::datagen::AppendShifted(db.get(), spec, 1.0, 0.0, 0.0, 10);
  ASSERT_TRUE(wj.UpdateWithData(*db).ok());
  // Rows doubled on both sides: the unfiltered join count grows ~2x (new
  // orders reference old+new customers uniformly).
  EXPECT_GT(wj.EstimateCardinality(q), before * 1.5);
}

}  // namespace
}  // namespace ce
}  // namespace lce
