// Behavioural tests of the query-driven estimator family. Training sizes are
// kept small; the assertions target learnability and API contracts, not
// state-of-the-art accuracy (that is what the benchmarks measure).

#include <gtest/gtest.h>

#include "src/ce/factory.h"
#include "src/eval/metrics.h"
#include "src/storage/datagen.h"
#include "src/workload/generator.h"

namespace lce {
namespace ce {
namespace {

struct Fixture {
  std::unique_ptr<storage::Database> db;
  std::vector<query::LabeledQuery> train;
  std::vector<query::LabeledQuery> test;
};

// One shared single-table fixture keeps the per-test cost low.
const Fixture& SingleTableFixture() {
  static Fixture* f = [] {
    auto* fx = new Fixture();
    fx->db =
        storage::datagen::Generate(storage::datagen::DmvLikeSpec(0.15), 21);
    workload::WorkloadOptions opts;
    opts.max_joins = 0;
    workload::WorkloadGenerator gen(fx->db.get(), opts);
    Rng rng(22);
    fx->train = gen.GenerateLabeled(900, &rng);
    fx->test = gen.GenerateLabeled(150, &rng);
    return fx;
  }();
  return *f;
}

const Fixture& JoinFixture() {
  static Fixture* f = [] {
    auto* fx = new Fixture();
    fx->db =
        storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.05), 23);
    workload::WorkloadOptions opts;
    opts.max_joins = 2;
    workload::WorkloadGenerator gen(fx->db.get(), opts);
    Rng rng(24);
    fx->train = gen.GenerateLabeled(700, &rng);
    fx->test = gen.GenerateLabeled(120, &rng);
    return fx;
  }();
  return *f;
}

NeuralOptions FastOptions() {
  NeuralOptions o;
  o.epochs = 15;
  o.hidden_dim = 32;
  return o;
}

// Baseline to beat: always predicts the median training cardinality.
double TrivialBaselineGeoMean(const Fixture& fx) {
  std::vector<double> cards;
  for (const auto& lq : fx.train) cards.push_back(lq.cardinality);
  double median = Percentile(cards, 50);
  std::vector<double> qerrs;
  for (const auto& lq : fx.test) {
    qerrs.push_back(eval::QError(median, lq.cardinality));
  }
  return GeometricMean(qerrs);
}

class QueryDrivenModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(QueryDrivenModelTest, LearnsSingleTableWorkload) {
  const Fixture& fx = SingleTableFixture();
  auto est = MakeEstimator(GetParam(), FastOptions(), 1);
  ASSERT_TRUE(est->Build(*fx.db, fx.train).ok());
  auto report = eval::EvaluateAccuracy(est.get(), fx.test);
  double baseline = TrivialBaselineGeoMean(fx);
  // Deep models must clearly beat a constant predictor; the capacity-bound
  // Linear model must at least match it.
  double factor = GetParam() == "Linear" ? 1.05 : 0.9;
  EXPECT_LT(report.summary.geo_mean, baseline * factor) << GetParam();
  for (double q : report.qerrors) {
    EXPECT_GE(q, 1.0);
    EXPECT_TRUE(std::isfinite(q));
  }
}

TEST_P(QueryDrivenModelTest, HandlesJoinQueries) {
  const Fixture& fx = JoinFixture();
  auto est = MakeEstimator(GetParam(), FastOptions(), 2);
  ASSERT_TRUE(est->Build(*fx.db, fx.train).ok());
  auto report = eval::EvaluateAccuracy(est.get(), fx.test);
  EXPECT_TRUE(std::isfinite(report.summary.max)) << GetParam();
  EXPECT_GT(est->SizeBytes(), 0u);
}

TEST_P(QueryDrivenModelTest, DeterministicForSameSeed) {
  const Fixture& fx = SingleTableFixture();
  NeuralOptions o = FastOptions();
  o.epochs = 4;
  auto a = MakeEstimator(GetParam(), o, 77);
  auto b = MakeEstimator(GetParam(), o, 77);
  ASSERT_TRUE(a->Build(*fx.db, fx.train).ok());
  ASSERT_TRUE(b->Build(*fx.db, fx.train).ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a->EstimateCardinality(fx.test[i].q),
                     b->EstimateCardinality(fx.test[i].q))
        << GetParam();
  }
}

TEST_P(QueryDrivenModelTest, UpdateWithQueriesImprovesFitOnNewRegion) {
  const Fixture& fx = SingleTableFixture();
  NeuralOptions o = FastOptions();
  o.epochs = 8;
  auto est = MakeEstimator(GetParam(), o, 3);
  ASSERT_TRUE(est->Build(*fx.db, fx.train).ok());

  // New queries from a narrower center region (a mild workload shift).
  workload::WorkloadOptions shift;
  shift.max_joins = 0;
  shift.center_lo = 0.5;
  shift.center_hi = 1.0;
  workload::WorkloadGenerator gen(fx.db.get(), shift);
  Rng rng(31);
  auto incoming = gen.GenerateLabeled(250, &rng);
  auto holdout = gen.GenerateLabeled(80, &rng);

  double before = eval::EvaluateAccuracy(est.get(), holdout).summary.geo_mean;
  ASSERT_TRUE(est->UpdateWithQueries(incoming).ok());
  double after = eval::EvaluateAccuracy(est.get(), holdout).summary.geo_mean;
  // Incremental training on the new region must not blow up, and should
  // usually help; allow slack for stochastic updates.
  EXPECT_LT(after, before * 1.5) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllModels, QueryDrivenModelTest,
                         ::testing::Values("Linear", "FCN", "FCN+Pool",
                                           "MSCN", "RNN", "LSTM", "LW-XGB"));

TEST(QueryDrivenTest, BuildRejectsEmptyTraining) {
  const Fixture& fx = SingleTableFixture();
  auto est = MakeEstimator("FCN", FastOptions(), 1);
  EXPECT_FALSE(est->Build(*fx.db, {}).ok());
}

TEST(QueryDrivenTest, EstimateBeforeBuildDies) {
  auto est = MakeEstimator("FCN", FastOptions(), 1);
  query::Query q;
  q.tables = {0};
  EXPECT_DEATH(est->EstimateCardinality(q), "Build");
}

TEST(QueryDrivenTest, FcnBeatsLinearOnCapacityBoundWorkload) {
  const Fixture& fx = SingleTableFixture();
  NeuralOptions o = FastOptions();
  o.epochs = 25;
  auto linear = MakeEstimator("Linear", o, 5);
  auto fcn = MakeEstimator("FCN", o, 5);
  ASSERT_TRUE(linear->Build(*fx.db, fx.train).ok());
  ASSERT_TRUE(fcn->Build(*fx.db, fx.train).ok());
  double lin = eval::EvaluateAccuracy(linear.get(), fx.test).summary.geo_mean;
  double deep = eval::EvaluateAccuracy(fcn.get(), fx.test).summary.geo_mean;
  EXPECT_LT(deep, lin);
}

TEST(QueryDrivenTest, LossAblationBothLossesTrain) {
  const Fixture& fx = SingleTableFixture();
  for (nn::LossKind loss : {nn::LossKind::kMse, nn::LossKind::kLogQ}) {
    NeuralOptions o = FastOptions();
    o.loss = loss;
    auto est = MakeEstimator("FCN", o, 6);
    ASSERT_TRUE(est->Build(*fx.db, fx.train).ok());
    auto report = eval::EvaluateAccuracy(est.get(), fx.test);
    EXPECT_LT(report.summary.geo_mean, TrivialBaselineGeoMean(fx));
  }
}

TEST(QueryDrivenTest, EncodingVariantsProduceWorkingModels) {
  const Fixture& fx = SingleTableFixture();
  for (query::FlatVariant variant :
       {query::FlatVariant::kFull, query::FlatVariant::kRangeOnly,
        query::FlatVariant::kCoarse}) {
    NeuralOptions o = FastOptions();
    o.flat_variant = variant;
    auto est = MakeEstimator("FCN", o, 7);
    ASSERT_TRUE(est->Build(*fx.db, fx.train).ok());
    EXPECT_TRUE(std::isfinite(
        eval::EvaluateAccuracy(est.get(), fx.test).summary.mean));
  }
}

}  // namespace
}  // namespace ce
}  // namespace lce
