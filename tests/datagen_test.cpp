#include "src/storage/datagen.h"

#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "src/util/stats.h"

namespace lce {
namespace storage {
namespace datagen {
namespace {

TEST(DatagenTest, DeterministicForSameSeed) {
  auto spec = SyntheticPairSpec(2000, 50, 1.0, 0.5);
  auto db1 = Generate(spec, 42);
  auto db2 = Generate(spec, 42);
  for (int c = 0; c < 2; ++c) {
    EXPECT_EQ(db1->table(0).column(c), db2->table(0).column(c));
  }
  auto db3 = Generate(spec, 43);
  EXPECT_NE(db1->table(0).column(0), db3->table(0).column(0));
}

TEST(DatagenTest, KeysAreSequential) {
  auto db = Generate(ImdbLikeSpec(0.1), 1);
  const Table& title = *db->FindTable("title").value();
  for (uint64_t r = 0; r < std::min<uint64_t>(100, title.num_rows()); ++r) {
    EXPECT_EQ(title.column(0)[r], static_cast<Value>(r));
  }
}

TEST(DatagenTest, ForeignKeysReferenceExistingRows) {
  auto db = Generate(ImdbLikeSpec(0.1), 2);
  const Table& title = *db->FindTable("title").value();
  const Table& mc = *db->FindTable("movie_companies").value();
  int fk = mc.schema().ColumnIndex("movie_id");
  ASSERT_GE(fk, 0);
  for (Value v : mc.column(fk)) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, static_cast<Value>(title.num_rows()));
  }
}

TEST(DatagenTest, DomainRespected) {
  auto spec = SyntheticPairSpec(5000, 37, 0.5, 0.0);
  auto db = Generate(spec, 3);
  for (int c = 0; c < 2; ++c) {
    for (Value v : db->table(0).column(c)) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 37);
    }
  }
}

TEST(DatagenTest, CorrelationKnobControlsDependence) {
  // Measure mutual predictability via the fraction of rows where b equals the
  // deterministic mixing of a (only generated under correlation).
  auto measure = [](double corr) {
    auto db = Generate(SyntheticPairSpec(8000, 64, 0.0, corr), 7);
    std::vector<double> a, b;
    for (uint64_t r = 0; r < db->table(0).num_rows(); ++r) {
      a.push_back(static_cast<double>(db->table(0).column(0)[r]));
      b.push_back(static_cast<double>(db->table(0).column(1)[r]));
    }
    // Group b by a: dependence shows up as low within-group diversity.
    std::unordered_map<int64_t, std::unordered_set<int64_t>> groups;
    for (size_t i = 0; i < a.size(); ++i) {
      groups[static_cast<int64_t>(a[i])].insert(static_cast<int64_t>(b[i]));
    }
    double avg_distinct = 0;
    for (auto& [k, s] : groups) avg_distinct += static_cast<double>(s.size());
    return avg_distinct / static_cast<double>(groups.size());
  };
  double indep = measure(0.0);
  double mid = measure(0.5);
  double full = measure(1.0);
  EXPECT_GT(indep, mid);
  EXPECT_GT(mid, full);
  EXPECT_NEAR(full, 1.0, 0.01);  // functional dependency
}

TEST(DatagenTest, SkewKnobConcentratesMass) {
  auto top_freq = [](double theta) {
    auto db = Generate(SyntheticPairSpec(8000, 100, theta, 0.0), 11);
    std::unordered_map<Value, int> freq;
    for (Value v : db->table(0).column(0)) ++freq[v];
    int best = 0;
    for (auto& [k, n] : freq) best = std::max(best, n);
    return best / 8000.0;
  };
  EXPECT_LT(top_freq(0.0), 0.05);
  EXPECT_GT(top_freq(2.0), 0.4);
}

TEST(DatagenTest, AppendShiftedGrowsTablesAndKeepsKeysUnique) {
  auto spec = TpchLikeSpec(0.05);
  auto db = Generate(spec, 5);
  uint64_t orders_before = db->FindTable("orders").value()->num_rows();
  AppendShifted(db.get(), spec, 0.5, 0.5, 0.2, 99);
  const Table& orders = *db->FindTable("orders").value();
  EXPECT_NEAR(static_cast<double>(orders.num_rows()),
              1.5 * static_cast<double>(orders_before), 2.0);
  std::unordered_set<Value> keys(orders.column(0).begin(),
                                 orders.column(0).end());
  EXPECT_EQ(keys.size(), orders.num_rows());
  EXPECT_TRUE(orders.finalized());
}

TEST(DatagenTest, AppendShiftedPreservesReferentialIntegrity) {
  auto spec = StatsLikeSpec(0.05);
  auto db = Generate(spec, 6);
  AppendShifted(db.get(), spec, 0.4, 0.3, 0.1, 123);
  const Table& users = *db->FindTable("users").value();
  const Table& posts = *db->FindTable("posts").value();
  int fk = posts.schema().ColumnIndex("p_owner_user_id");
  for (Value v : posts.column(fk)) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, static_cast<Value>(users.num_rows()));
  }
}

class StudyDatabasesTest : public ::testing::TestWithParam<int> {};

TEST_P(StudyDatabasesTest, GeneratesValidConnectedDatabase) {
  auto specs = AllStudyDatabases(0.05);
  const DatabaseGenSpec& spec = specs[GetParam()];
  auto db = Generate(spec, 17);
  EXPECT_EQ(db->name(), spec.name);
  std::vector<int> all;
  for (int t = 0; t < db->num_tables(); ++t) {
    all.push_back(t);
    EXPECT_GT(db->table(t).num_rows(), 0u);
    EXPECT_TRUE(db->table(t).finalized());
  }
  EXPECT_TRUE(db->IsConnected(all));
}

INSTANTIATE_TEST_SUITE_P(AllFour, StudyDatabasesTest,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace datagen
}  // namespace storage
}  // namespace lce
