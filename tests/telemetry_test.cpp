#include "src/util/telemetry/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/ce/factory.h"
#include "src/storage/datagen.h"
#include "src/util/json_writer.h"
#include "src/util/parallel.h"
#include "src/util/telemetry/event_ring.h"
#include "src/util/telemetry/run_manifest.h"
#include "src/util/telemetry/trace.h"
#include "src/workload/generator.h"

namespace lce {
namespace telemetry {
namespace {

// Every test starts from a clean, enabled registry and a disabled trace, and
// restores the env-derived state afterwards so ordering cannot leak.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabledForTesting(1);
    SetTracePathForTesting("");
    ClearTraceForTesting();
    MetricsRegistry::Global().ResetForTesting();
  }
  void TearDown() override {
    SetMetricsEnabledForTesting(-1);
    SetTracePathForTesting(nullptr);
    ClearTraceForTesting();
    MetricsRegistry::Global().ResetForTesting();
    parallel::SetThreadCountForTesting(0);
  }
};

TEST_F(TelemetryTest, CounterAccumulatesAcrossPoolThreads) {
  parallel::SetThreadCountForTesting(4);
  Counter& c = MetricsRegistry::Global().counter("test.parallel_adds");
  parallel::ParallelFor(0, 1000, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) c.Add(2);
  });
  EXPECT_EQ(c.Value(), 2000u);
}

TEST_F(TelemetryTest, DisabledCounterRecordsNothing) {
  SetMetricsEnabledForTesting(0);
  Counter& c = MetricsRegistry::Global().counter("test.disabled");
  c.Add(5);
  c.Increment();
  EXPECT_EQ(c.Value(), 0u);
  c.AddAlways(3);  // explicit bypass still records
  EXPECT_EQ(c.Value(), 3u);
}

TEST_F(TelemetryTest, RegistryReturnsStableHandles) {
  Counter& a = MetricsRegistry::Global().counter("test.stable");
  a.Add(1);
  MetricsRegistry::Global().ResetForTesting();
  EXPECT_EQ(a.Value(), 0u);  // zeroed, not invalidated
  Counter& b = MetricsRegistry::Global().counter("test.stable");
  EXPECT_EQ(&a, &b);
}

TEST_F(TelemetryTest, GaugeKeepsLastValue) {
  Gauge& g = MetricsRegistry::Global().gauge("test.gauge");
  g.Set(1.5);
  g.Set(-2.25);
  EXPECT_DOUBLE_EQ(g.Value(), -2.25);
}

TEST_F(TelemetryTest, HistogramQuantilesLandWithinBucketResolution) {
  Histogram& h = MetricsRegistry::Global().histogram("test.latency");
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i));
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_NEAR(snap.mean, 500.5, 0.5);  // sum is exact, count is exact
  // Log buckets grow by 2^(1/3) (~26%); allow ~30% relative error.
  EXPECT_NEAR(snap.p50, 500.0, 150.0);
  EXPECT_NEAR(snap.p95, 950.0, 285.0);
  EXPECT_NEAR(snap.p99, 990.0, 300.0);
  EXPECT_GE(snap.max, 1000.0 * 0.74);
}

TEST_F(TelemetryTest, HistogramUnderflowReportsMinValue) {
  Histogram& h = MetricsRegistry::Global().histogram("test.tiny");
  h.Observe(0.0);
  h.Observe(1e-9);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.p50, Histogram::kMinValue);
}

TEST_F(TelemetryTest, ScopedPhaseAccumulatesUnderPhaseScope) {
  {
    PhaseScope scope("EstA");
    ScopedPhase phase("unit/step");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Phase counters flow through the event ring; drain it before reading.
  FlushEventRings();
  uint64_t ns =
      MetricsRegistry::Global().counter("phase.EstA:unit/step.ns").Value();
  uint64_t calls =
      MetricsRegistry::Global().counter("phase.EstA:unit/step.calls").Value();
  EXPECT_EQ(calls, 1u);
  EXPECT_GE(ns, 1'000'000u);  // at least 1ms of the 2ms sleep
}

TEST_F(TelemetryTest, PhaseScopeNestsAndRestores) {
  EXPECT_EQ(PhaseScope::Current(), "");
  {
    PhaseScope outer("outer");
    EXPECT_EQ(PhaseScope::Current(), "outer");
    {
      PhaseScope inner("inner");
      EXPECT_EQ(PhaseScope::Current(), "inner");
    }
    EXPECT_EQ(PhaseScope::Current(), "outer");
  }
  EXPECT_EQ(PhaseScope::Current(), "");
}

TEST_F(TelemetryTest, TraceSpansRecordNestingAndThreadAttribution) {
  SetTracePathForTesting("unused_inline_path.json");
  {
    TraceSpan outer("outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      TraceSpan inner("inner");
      inner.AddArg("k", 42.0);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  parallel::SetThreadCountForTesting(4);
  parallel::ParallelFor(0, 8, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      TraceSpan span("worker_span");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<TraceEvent> events = SnapshotTraceEventsForTesting();
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  std::set<uint32_t> worker_tids;
  for (const TraceEvent& e : events) {
    if (e.name == "outer") outer = &e;
    if (e.name == "inner") inner = &e;
    if (e.name == "worker_span") worker_tids.insert(e.tid);
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Nesting: inner is contained in outer, on the same thread.
  EXPECT_EQ(inner->tid, outer->tid);
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns, outer->start_ns + outer->dur_ns);
  ASSERT_EQ(inner->args.size(), 1u);
  EXPECT_EQ(inner->args[0].first, "k");
  EXPECT_DOUBLE_EQ(inner->args[0].second, 42.0);
  // 8 spans of ~2ms across a 4-lane pool: at least two distinct threads.
  EXPECT_GE(worker_tids.size(), 2u);
}

TEST_F(TelemetryTest, TraceExportIsParseableChromeJson) {
  std::string path = ::testing::TempDir() + "/lce_trace_test.json";
  SetTracePathForTesting(path.c_str());
  SetCurrentThreadName("telemetry-test-main");
  {
    TraceSpan span(std::string("tricky \"name\"\\with\nescapes"));
    span.AddArg("x", 1.5);
  }
  WriteTraceIfEnabled();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  json::JsonValue doc;
  std::string error;
  ASSERT_TRUE(json::Parse(buf.str(), &doc, &error)) << error;

  const json::JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found_span = false, found_thread_name = false;
  for (const json::JsonValue& e : events->array) {
    const json::JsonValue* ph = e.Find("ph");
    const json::JsonValue* name = e.Find("name");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(name, nullptr);
    if (ph->string == "X" && name->string == "tricky \"name\"\\with\nescapes") {
      found_span = true;
      EXPECT_GE(e.Find("dur")->number, 0.0);
      EXPECT_DOUBLE_EQ(e.Find("args")->Find("x")->number, 1.5);
    }
    if (ph->string == "M" && name->string == "thread_name") {
      found_thread_name = true;
    }
  }
  EXPECT_TRUE(found_span);
  EXPECT_TRUE(found_thread_name);
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, RegistryJsonSnapshotParses) {
  MetricsRegistry::Global().counter("test.json_counter").Add(7);
  MetricsRegistry::Global().gauge("test.json_gauge").Set(2.5);
  MetricsRegistry::Global().histogram("test.json_hist").Observe(10.0);
  std::string out;
  JsonWriter w(&out);
  MetricsRegistry::Global().WriteJson(&w);
  json::JsonValue doc;
  std::string error;
  ASSERT_TRUE(json::Parse(out, &doc, &error)) << error;
  EXPECT_DOUBLE_EQ(doc.Find("counters")->Find("test.json_counter")->number,
                   7.0);
  EXPECT_DOUBLE_EQ(doc.Find("gauges")->Find("test.json_gauge")->number, 2.5);
  EXPECT_DOUBLE_EQ(doc.Find("histograms")->Find("test.json_hist")
                       ->Find("count")->number,
                   1.0);
}

TEST_F(TelemetryTest, RunManifestParsesAndListsPhases) {
  {
    PhaseScope scope("ManifestEst");
    ScopedPhase phase("unit/manifest_step");
  }
  std::string out = RunManifestJson("unit_test_bench", 1.25);
  json::JsonValue doc;
  std::string error;
  ASSERT_TRUE(json::Parse(out, &doc, &error)) << error;
  EXPECT_EQ(doc.Find("bench")->string, "unit_test_bench");
  EXPECT_DOUBLE_EQ(doc.Find("wall_seconds")->number, 1.25);
  EXPECT_FALSE(doc.Find("git_commit")->string.empty());
  const json::JsonValue* phases = doc.Find("phases");
  ASSERT_NE(phases, nullptr);
  bool found = false;
  for (const json::JsonValue& p : phases->array) {
    if (p.Find("name")->string == "ManifestEst:unit/manifest_step") {
      found = true;
      EXPECT_DOUBLE_EQ(p.Find("calls")->number, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

// The acceptance bar for the whole subsystem: enabling metrics + tracing must
// not move a single bit of estimator output. LW-XGB exercises the GBDT path
// (split search, binning), FCN the NN path (per-epoch telemetry).
TEST_F(TelemetryTest, PoolTasksNestUnderSubmittingSpan) {
  // Cross-thread propagation: ThreadPool::Submit captures the submitter's
  // current span id, and spans opened inside pool tasks parent under it —
  // so a 4-thread training trace nests lane work under the build span.
  SetTracePathForTesting("unused_pool_parent_path.json");
  parallel::SetThreadCountForTesting(4);
  uint64_t submit_span_id = 0;
  {
    TraceSpan submit("submit_parent");
    submit_span_id = CurrentSpanId();
    parallel::ParallelFor(0, 16, 1, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        TraceSpan span("pool_task");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  EXPECT_NE(submit_span_id, 0u);

  std::vector<TraceEvent> events = SnapshotTraceEventsForTesting();
  std::map<uint64_t, const TraceEvent*> by_id;
  for (const TraceEvent& e : events) by_id[e.id] = &e;
  int pool_tasks = 0;
  std::set<uint32_t> tids;
  for (const TraceEvent& e : events) {
    if (e.name != "pool_task") continue;
    ++pool_tasks;
    tids.insert(e.tid);
    EXPECT_NE(e.parent_id, 0u);
    // The parent chain must reach the submitting span (directly for chunks
    // run inline on the caller thread, via adoption for pool lanes).
    uint64_t p = e.parent_id;
    int hops = 0;
    while (p != 0 && p != submit_span_id && hops < 8) {
      auto it = by_id.find(p);
      if (it == by_id.end()) break;
      p = it->second->parent_id;
      ++hops;
    }
    EXPECT_EQ(p, submit_span_id) << "pool_task not nested under submitter";
  }
  EXPECT_EQ(pool_tasks, 16);
  EXPECT_GE(tids.size(), 2u);
}

TEST_F(TelemetryTest, TraceExportEmitsFlowEventsForCrossThreadEdges) {
  std::string path = ::testing::TempDir() + "/lce_trace_flow_test.json";
  SetTracePathForTesting(path.c_str());
  parallel::SetThreadCountForTesting(4);
  {
    TraceSpan submit("flow_parent");
    parallel::ParallelFor(0, 8, 1, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        TraceSpan span("flow_child");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }
  WriteTraceIfEnabled();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  json::JsonValue doc;
  std::string error;
  ASSERT_TRUE(json::Parse(buf.str(), &doc, &error)) << error;
  int flow_starts = 0, flow_finishes = 0;
  bool span_ids_exported = false;
  for (const json::JsonValue& e : doc.Find("traceEvents")->array) {
    const std::string& ph = e.Find("ph")->string;
    if (ph == "s") ++flow_starts;
    if (ph == "f") ++flow_finishes;
    if (ph == "X" && e.Find("name")->string == "flow_child") {
      const json::JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      span_ids_exported = args->Find("span_id") != nullptr &&
                          args->Find("parent_span_id") != nullptr;
    }
  }
  // 8 one-ms children across 4 lanes: at least one ran off-thread, and every
  // flow start pairs with a finish.
  EXPECT_GT(flow_starts, 0);
  EXPECT_EQ(flow_starts, flow_finishes);
  EXPECT_TRUE(span_ids_exported);
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, EstimatesBitIdenticalWithTelemetryOnAndOff) {
  auto db = storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.02), 1);
  workload::WorkloadOptions wopts;
  wopts.max_joins = 2;
  workload::WorkloadGenerator gen(db.get(), wopts);
  Rng rng(11);
  auto train = gen.GenerateLabeled(60, &rng);
  auto test = gen.GenerateLabeled(20, &rng);

  ce::NeuralOptions neural;
  neural.epochs = 3;
  neural.hidden_dim = 16;

  auto estimates = [&](const std::string& name) {
    auto est = ce::MakeEstimator(name, neural, 42);
    EXPECT_TRUE(est->Build(*db, train).ok());
    std::vector<double> out;
    for (const auto& lq : test) out.push_back(est->EstimateCardinality(lq.q));
    return out;
  };

  for (const std::string& name : {std::string("LW-XGB"), std::string("FCN")}) {
    SetMetricsEnabledForTesting(0);
    SetTracePathForTesting("");
    std::vector<double> off = estimates(name);

    SetMetricsEnabledForTesting(1);
    SetTracePathForTesting("unused_bit_identity_path.json");
    std::vector<double> on = estimates(name);

    ASSERT_EQ(off.size(), on.size());
    for (size_t i = 0; i < off.size(); ++i) {
      EXPECT_EQ(off[i], on[i]) << name << " diverged at query " << i;
    }
  }
}

}  // namespace
}  // namespace telemetry
}  // namespace lce
