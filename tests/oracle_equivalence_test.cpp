// Oracle acceleration equivalence suite.
//
// The indexed executor path (LCE_ORACLE_INDEX=1) must be an exact drop-in for
// the naive bitmap path: every count it produces is an integer computed from
// the same filtered row sets, so results are bit-identical — not merely
// close — with the index on or off, at any thread count, and at any bitmap
// cache capacity. A randomized query zoo over skewed + correlated datasets
// (0-4 joins, 0-3 predicates per table) pins that contract.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/executor.h"
#include "src/exec/oracle_index.h"
#include "src/storage/datagen.h"
#include "src/util/parallel.h"
#include "src/workload/generator.h"

namespace lce {
namespace exec {
namespace {

struct ZooCase {
  const char* name;
  storage::datagen::DatabaseGenSpec spec;
  int max_joins;
  int queries;
};

std::vector<ZooCase> ZooCases() {
  std::vector<ZooCase> cases;
  // Skewed + correlated single table: exercises multi-predicate filters where
  // candidate ranges overlap heavily.
  cases.push_back({"synthetic_skew_corr",
                   storage::datagen::SyntheticPairSpec(6000, 30, 1.2, 0.8), 0,
                   30});
  // Snowflake schemas: 0-4 join edges with Zipf FK fanout.
  cases.push_back({"imdb_like", storage::datagen::ImdbLikeSpec(0.02), 4, 25});
  cases.push_back({"stats_like", storage::datagen::StatsLikeSpec(0.02), 4, 25});
  return cases;
}

/// Cardinality and (for join queries) two SubsetCardinality probes, computed
/// under whatever oracle-index / thread-count configuration is active.
std::vector<double> Evaluate(const storage::Database& db,
                             const std::vector<query::Query>& zoo) {
  Executor ex(&db);
  std::vector<double> out;
  for (const query::Query& q : zoo) {
    out.push_back(ex.Cardinality(q));
    if (q.tables.size() > 1) {
      out.push_back(ex.SubsetCardinality(q, {q.tables[0]}));
      out.push_back(
          ex.SubsetCardinality(q, {q.tables[0], q.tables[1]}));
    }
  }
  return out;
}

TEST(OracleEquivalenceTest, IndexedPathIsBitIdenticalAcrossThreadCounts) {
  for (const ZooCase& zc : ZooCases()) {
    SCOPED_TRACE(zc.name);
    auto db = storage::datagen::Generate(zc.spec, 42);

    workload::WorkloadOptions wopts;
    wopts.max_joins = zc.max_joins;
    wopts.min_predicates = 0;
    wopts.max_predicates = 3;
    wopts.min_cardinality = 0;
    workload::WorkloadGenerator gen(db.get(), wopts);
    Rng rng(1234);
    std::vector<query::Query> zoo;
    for (int i = 0; i < zc.queries; ++i) {
      zoo.push_back(gen.GenerateQuery(&rng));
      ASSERT_TRUE(query::Validate(zoo.back(), *db).ok());
    }
    // Ensure subsets picked in Evaluate() are connected: drop to the first
    // table only when {t0, t1} is not adjacent.
    for (query::Query& q : zoo) {
      if (q.tables.size() > 1 &&
          !db->IsConnected({q.tables[0], q.tables[1]})) {
        q.tables.resize(1);
        q.join_edges.clear();
        std::vector<query::Predicate> kept;
        for (const query::Predicate& p : q.predicates) {
          if (p.col.table == q.tables[0]) kept.push_back(p);
        }
        q.predicates = std::move(kept);
      }
    }

    SetOracleIndexEnabledForTesting(0);
    parallel::SetThreadCountForTesting(1);
    std::vector<double> reference = Evaluate(*db, zoo);

    struct Config {
      int oracle_index;
      int threads;
      int cache_capacity;  // -1 = env default
    };
    for (const Config& cfg : std::vector<Config>{{0, 4, -1},
                                                 {1, 1, -1},
                                                 {1, 4, -1},
                                                 {1, 4, 2},
                                                 {1, 4, 0}}) {
      SCOPED_TRACE("index=" + std::to_string(cfg.oracle_index) +
                   " threads=" + std::to_string(cfg.threads) +
                   " cache=" + std::to_string(cfg.cache_capacity));
      SetOracleIndexEnabledForTesting(cfg.oracle_index);
      SetBitmapCacheCapacityForTesting(cfg.cache_capacity);
      parallel::SetThreadCountForTesting(cfg.threads);
      std::vector<double> got = Evaluate(*db, zoo);
      ASSERT_EQ(got.size(), reference.size());
      for (size_t i = 0; i < got.size(); ++i) {
        // EXPECT_EQ, not NEAR: exact integer counts must match bitwise.
        EXPECT_EQ(got[i], reference[i]) << "result " << i;
      }
    }

    SetOracleIndexEnabledForTesting(-1);
    SetBitmapCacheCapacityForTesting(-1);
    parallel::SetThreadCountForTesting(0);
  }
}

TEST(OracleEquivalenceTest, AppendedRowsAreVisibleThroughTheIndex) {
  // After AppendShifted-style growth, both paths must agree on the new data:
  // the index rebuilds transparently off Table::version().
  auto spec = storage::datagen::SyntheticPairSpec(3000, 20, 0.9, 0.5);
  auto db = storage::datagen::Generate(spec, 7);
  Executor ex(db.get());
  query::Query q;
  q.tables = {0};
  q.predicates = {{{0, 0}, 3, 9}, {{0, 1}, 0, 12}};

  SetOracleIndexEnabledForTesting(1);
  double before = ex.Cardinality(q);
  storage::datagen::AppendShifted(db.get(), spec, 0.25, 0.3, 0.2, 8);
  double after_indexed = ex.Cardinality(q);
  SetOracleIndexEnabledForTesting(0);
  double after_naive = ex.Cardinality(q);
  SetOracleIndexEnabledForTesting(-1);

  EXPECT_EQ(after_indexed, after_naive);
  EXPECT_GE(after_indexed, before);  // appends can only add qualifying rows
}

}  // namespace
}  // namespace exec
}  // namespace lce
