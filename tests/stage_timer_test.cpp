#include "src/util/telemetry/stage_timer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/ce/query_driven/lwxgb_model.h"
#include "src/storage/datagen.h"
#include "src/util/rng.h"
#include "src/util/telemetry/event_ring.h"
#include "src/util/telemetry/flight_recorder.h"
#include "src/util/telemetry/telemetry.h"
#include "src/workload/generator.h"

namespace lce {
namespace telemetry {
namespace {

HistogramSnapshot Snap(const std::string& name) {
  return MetricsRegistry::Global().histogram(name).Snapshot();
}

// Histograms are cumulative per process, so every test compares against a
// before-count and uses model names unique to this file.
class StageTimerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabledForTesting(1);
    SetFlightRecorderEnabledForTesting(0);
  }
  void TearDown() override {
    FlushEventRings();
    SetMetricsEnabledForTesting(-1);
    SetFlightRecorderEnabledForTesting(-1);
  }
};

TEST_F(StageTimerTest, NestedTimersAttributeToInnermost) {
  uint64_t outer0 = Snap("ce.NestOuter.stage.outer_work.micros").count;
  uint64_t inner0 = Snap("ce.NestInner.stage.inner_work.micros").count;
  uint64_t marked0 = Snap("ce.NestInner.stage.marked.micros").count;
  uint64_t after0 = Snap("ce.NestOuter.stage.after_inner.micros").count;
  {
    StageTimer outer([] { return std::string("NestOuter"); });
    outer.Stage("outer_work");
    {
      StageTimer inner([] { return std::string("NestInner"); });
      inner.Stage("inner_work");
      // Mark() from a shared helper lands on the innermost live timer.
      StageTimer::Mark("marked");
    }
    // With the inner timer gone, Mark() targets the outer one again.
    StageTimer::Mark("after_inner");
  }
  FlushEventRings();
  EXPECT_EQ(Snap("ce.NestOuter.stage.outer_work.micros").count - outer0, 1u);
  EXPECT_EQ(Snap("ce.NestInner.stage.inner_work.micros").count - inner0, 1u);
  EXPECT_EQ(Snap("ce.NestInner.stage.marked.micros").count - marked0, 1u);
  EXPECT_EQ(Snap("ce.NestOuter.stage.after_inner.micros").count - after0, 1u);
}

TEST_F(StageTimerTest, ZeroDurationStagesRecordCleanly) {
  const std::string name = "ce.ZeroStage.stage.a.micros";
  uint64_t before = Snap(name).count;
  {
    StageTimer t([] { return std::string("ZeroStage"); });
    t.Stage("a");
    t.Stage("b");  // closes "a" with (near-)zero elapsed time
  }
  FlushEventRings();
  HistogramSnapshot s = Snap(name);
  EXPECT_EQ(s.count - before, 1u);
  EXPECT_GE(s.min, 0.0);
}

TEST_F(StageTimerTest, AllGatesOffTimerIsInert) {
  SetMetricsEnabledForTesting(0);
  const std::string name = "ce.InertModel.stage.a.micros";
  uint64_t before = Snap(name).count;
  bool name_materialized = false;
  {
    StageTimer t([&] {
      name_materialized = true;
      return std::string("InertModel");
    });
    t.Stage("a");
    StageTimer::Mark("b");
  }
  StageTimer::Mark("orphan");  // no live timer anywhere: no-op
  FlushEventRings();
  EXPECT_FALSE(name_materialized);
  EXPECT_EQ(Snap(name).count, before);
}

TEST_F(StageTimerTest, BatchWeightScalesObservationCount) {
  const std::string stage_name = "ce.BatchModel.stage.bulk.micros";
  const std::string lat_name = "ce.BatchModel.latency.micros";
  uint64_t s0 = Snap(stage_name).count;
  uint64_t l0 = Snap(lat_name).count;
  {
    StageTimer t([] { return std::string("BatchModel"); }, 16);
    t.Stage("bulk");
  }
  FlushEventRings();
  // Per-item micros observed with weight 16: batch and per-query paths
  // share one histogram scale.
  EXPECT_EQ(Snap(stage_name).count - s0, 16u);
  EXPECT_EQ(Snap(lat_name).count - l0, 16u);
}

TEST_F(StageTimerTest, EstimateBatchWeightsStagesPerQuery) {
  auto db = storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.02), 1);
  workload::WorkloadOptions wopts;
  wopts.max_joins = 2;
  workload::WorkloadGenerator gen(db.get(), wopts);
  Rng rng(7);
  auto labeled = gen.GenerateLabeled(40, &rng);
  ce::LwXgbEstimator est;
  ASSERT_TRUE(est.Build(*db, labeled).ok());
  std::vector<query::Query> queries;
  for (const auto& lq : labeled) queries.push_back(lq.q);

  const std::string encode = "ce.LW-XGB.stage.encode.micros";
  FlushEventRings();
  uint64_t before = Snap(encode).count;
  est.EstimateBatch(queries);
  FlushEventRings();
  EXPECT_EQ(Snap(encode).count - before, queries.size());
  est.EstimateCardinality(queries[0]);
  FlushEventRings();
  EXPECT_EQ(Snap(encode).count - before, queries.size() + 1);
}

TEST_F(StageTimerTest, FlightRecorderCaptureSpansNestedTimers) {
  SetMetricsEnabledForTesting(0);
  SetFlightRecorderEnabledForTesting(1);
  {
    StageTimer outer([] { return std::string("NestOuter"); });
    outer.Stage("outer_work");
    {
      StageTimer inner([] { return std::string("NestInner"); });
      inner.Stage("inner_work");
    }
  }
  ForensicRecord rec;
  FillStagesFromThread(&rec);
  // Nested timers append to the same query's capture; the inner stage
  // closes first, the outer on destruction.
  ASSERT_EQ(rec.stages_recorded, 2);
  EXPECT_STREQ(rec.stages[0].name, "inner_work");
  EXPECT_STREQ(rec.stages[1].name, "outer_work");
  EXPECT_GE(rec.stages[0].micros, 0.0);

  // A fresh top-level timer resets the capture to its own stages.
  {
    StageTimer t([] { return std::string("NestOuter"); });
    t.Stage("fresh");
  }
  ForensicRecord rec2;
  FillStagesFromThread(&rec2);
  ASSERT_EQ(rec2.stages_recorded, 1);
  EXPECT_STREQ(rec2.stages[0].name, "fresh");
}

}  // namespace
}  // namespace telemetry
}  // namespace lce
