// Randomized equivalence of the vectorized kernel layer against the naive
// reference path (LCE_SIMD=0), asserting the DESIGN.md §10 exactness
// contract: the default build is BIT-identical to the reference on every
// input, at every thread count, for every shape — including degenerate ones
// (1xN, Nx1, odd tails past the 4-row panels and 16-float padding).

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/nn/activation.h"
#include "src/nn/adam.h"
#include "src/nn/matrix.h"
#include "src/nn/mlp.h"
#include "src/util/parallel.h"
#include "src/util/simd.h"

namespace lce {
namespace nn {
namespace {

// Restores both kernel knobs and the pool size on scope exit, so a failing
// assertion cannot leak state into later tests.
struct KernelEnvGuard {
  ~KernelEnvGuard() {
    simd::SetSimdEnabledForTesting(-1);
    simd::SetFastMathEnabledForTesting(-1);
    parallel::SetThreadCountForTesting(0);
  }
};

// Bit pattern of every logical element; NaNs compare equal to themselves.
std::vector<uint32_t> Bits(const Matrix& m) {
  std::vector<float> flat = m.ToFlat();
  std::vector<uint32_t> bits(flat.size());
  static_assert(sizeof(float) == sizeof(uint32_t));
  std::memcpy(bits.data(), flat.data(), flat.size() * sizeof(float));
  return bits;
}

// Dense Gaussian values with a sprinkle of exact zeros (the removed
// `av == 0.0f` skip must not resurface as a behavioral difference).
Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m = Matrix::Randn(rows, cols, 1.0f, rng);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (rng->UniformInt(0, 9) == 0) m.At(r, c) = 0.0f;
    }
  }
  return m;
}

struct Shape {
  int m, k, n;
};

// Panel multiples, odd tails, vectors, and padding-boundary sizes.
const Shape kShapes[] = {
    {1, 1, 1},   {1, 7, 1},    {7, 1, 7},    {1, 384, 48}, {48, 384, 1},
    {4, 16, 16}, {5, 17, 19},  {8, 33, 15},  {16, 16, 16}, {13, 64, 31},
    {64, 48, 9}, {33, 47, 63}, {96, 96, 96},
};

const int kThreadCounts[] = {1, 4};

template <typename Op>
void ExpectBitIdenticalAcrossPaths(const char* what, const Op& op) {
  KernelEnvGuard guard;
  for (int threads : kThreadCounts) {
    parallel::SetThreadCountForTesting(threads);
    simd::SetSimdEnabledForTesting(0);
    Matrix reference = op();
    simd::SetSimdEnabledForTesting(1);
    Matrix fast = op();
    ASSERT_EQ(reference.rows(), fast.rows()) << what;
    ASSERT_EQ(reference.cols(), fast.cols()) << what;
    EXPECT_EQ(Bits(reference), Bits(fast))
        << what << " diverges at " << threads << " threads";
  }
}

TEST(KernelEquivalenceTest, MatMulMatchesNaiveBitwise) {
  for (const Shape& s : kShapes) {
    Rng rng(s.m * 10007 + s.k * 101 + s.n);
    Matrix a = RandomMatrix(s.m, s.k, &rng);
    Matrix b = RandomMatrix(s.k, s.n, &rng);
    ExpectBitIdenticalAcrossPaths("MatMul", [&] { return MatMul(a, b); });
  }
}

TEST(KernelEquivalenceTest, MatMulTransAMatchesNaiveBitwise) {
  for (const Shape& s : kShapes) {
    Rng rng(s.m * 7919 + s.k * 211 + s.n);
    Matrix a = RandomMatrix(s.k, s.m, &rng);  // A^T is m x k
    Matrix b = RandomMatrix(s.k, s.n, &rng);
    ExpectBitIdenticalAcrossPaths("MatMulTransA",
                                  [&] { return MatMulTransA(a, b); });
  }
}

TEST(KernelEquivalenceTest, MatMulTransBMatchesNaiveBitwise) {
  for (const Shape& s : kShapes) {
    Rng rng(s.m * 6007 + s.k * 307 + s.n);
    Matrix a = RandomMatrix(s.m, s.k, &rng);
    Matrix b = RandomMatrix(s.n, s.k, &rng);  // B^T is k x n
    ExpectBitIdenticalAcrossPaths("MatMulTransB",
                                  [&] { return MatMulTransB(a, b); });
  }
}

TEST(KernelEquivalenceTest, FusedBiasActivationMatchesUnfusedBitwise) {
  const Activation kActs[] = {Activation::kIdentity, Activation::kRelu,
                              Activation::kSigmoid, Activation::kTanh};
  for (const Shape& s : kShapes) {
    for (Activation act : kActs) {
      Rng rng(s.m * 31 + s.k * 17 + s.n * 13 + static_cast<int>(act));
      Matrix a = RandomMatrix(s.m, s.k, &rng);
      Matrix b = RandomMatrix(s.k, s.n, &rng);
      Matrix bias = RandomMatrix(1, s.n, &rng);
      // Fused vs the three separate passes, under the same kernel path.
      KernelEnvGuard guard;
      for (int simd_on : {0, 1}) {
        simd::SetSimdEnabledForTesting(simd_on);
        Matrix fused = MatMulBiasAct(a, b, bias, act);
        Matrix unfused = MatMul(a, b);
        AddBiasRow(&unfused, bias);
        unfused = ApplyActivation(act, std::move(unfused));
        EXPECT_EQ(Bits(fused), Bits(unfused))
            << "fused epilogue diverges, simd=" << simd_on;
      }
      // And the fused op itself across paths.
      ExpectBitIdenticalAcrossPaths(
          "MatMulBiasAct", [&] { return MatMulBiasAct(a, b, bias, act); });
    }
  }
}

TEST(KernelEquivalenceTest, AddBiasRowActivateMatchesSeparatePasses) {
  Rng rng(99);
  Matrix x = RandomMatrix(9, 37, &rng);
  Matrix bias = RandomMatrix(1, 37, &rng);
  for (Activation act : {Activation::kRelu, Activation::kTanh}) {
    Matrix fused = x;
    AddBiasRowActivate(&fused, bias, act);
    Matrix unfused = x;
    AddBiasRow(&unfused, bias);
    unfused = ApplyActivation(act, std::move(unfused));
    EXPECT_EQ(Bits(fused), Bits(unfused));
  }
}

TEST(KernelEquivalenceTest, ElementwiseOpsPreservePaddingAndValues) {
  Rng rng(7);
  // Odd width: 2 padding floats per row behind the 14 logical columns.
  Matrix a = RandomMatrix(5, 14, &rng);
  Matrix b = RandomMatrix(5, 14, &rng);
  std::vector<float> expected(a.size());
  {
    std::vector<float> fa = a.ToFlat(), fb = b.ToFlat();
    for (size_t i = 0; i < fa.size(); ++i) expected[i] = (fa[i] + fb[i]) * 0.5f;
  }
  a.Add(b);
  a.Scale(0.5f);
  EXPECT_EQ(a.ToFlat(), expected);
  // Padding must still be zero everywhere (checksum stability contract).
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = a.cols(); c < a.ld(); ++c) {
      EXPECT_EQ(a.RowPtr(r)[c], 0.0f) << "padding dirtied at " << r;
    }
  }
}

TEST(KernelEquivalenceTest, RowsAre64ByteAligned) {
  Matrix m(3, 5);
  for (int r = 0; r < m.rows(); ++r) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.RowPtr(r)) % 64, 0u);
  }
  EXPECT_EQ(m.ld(), 16);
  EXPECT_EQ(m.padded_size(), 48u);
  EXPECT_EQ(m.size(), 15u);
}

TEST(KernelEquivalenceTest, NanPropagatesThroughZeroWeights) {
  // The old kernels skipped av == 0.0f and silently dropped NaN rows of B;
  // both paths must now agree AND propagate (0 * NaN == NaN).
  Matrix a = Matrix::FromFlat(1, 2, {0.0f, 1.0f});
  Matrix b = Matrix::FromFlat(
      2, 2, {std::numeric_limits<float>::quiet_NaN(), 2.0f, 3.0f, 4.0f});
  KernelEnvGuard guard;
  for (int simd_on : {0, 1}) {
    simd::SetSimdEnabledForTesting(simd_on);
    Matrix c = MatMul(a, b);
    EXPECT_TRUE(std::isnan(c.At(0, 0))) << "simd=" << simd_on;
    EXPECT_FLOAT_EQ(c.At(0, 1), 4.0f);  // 0*2 + 1*4
  }
}

// End-to-end: a full training run (forward, backward, Adam) lands on
// bit-identical weights with the vectorized and reference kernels, at 1 and
// 4 threads — the estimator-zoo guarantee in miniature.
TEST(KernelEquivalenceTest, MlpTrainingIsBitIdenticalAcrossPaths) {
  KernelEnvGuard guard;
  auto train = [] {
    Rng rng(42);
    Mlp mlp({7, 16, 5, 1}, Activation::kRelu, Activation::kSigmoid, &rng);
    Adam adam(1e-2f);
    Matrix x = Matrix::Randn(12, 7, 1.0f, &rng);
    for (int step = 0; step < 10; ++step) {
      Matrix y = mlp.Forward(x);
      Matrix dy(y.rows(), y.cols(), 1.0f);
      mlp.Backward(dy);
      adam.Step(mlp.Params());
    }
    std::vector<uint32_t> bits;
    for (Param* p : mlp.Params()) {
      std::vector<uint32_t> b = Bits(p->value);
      bits.insert(bits.end(), b.begin(), b.end());
    }
    return bits;
  };
  simd::SetSimdEnabledForTesting(0);
  parallel::SetThreadCountForTesting(1);
  std::vector<uint32_t> reference = train();
  for (int threads : kThreadCounts) {
    parallel::SetThreadCountForTesting(threads);
    simd::SetSimdEnabledForTesting(1);
    EXPECT_EQ(reference, train()) << "threads=" << threads;
    simd::SetSimdEnabledForTesting(0);
    EXPECT_EQ(reference, train()) << "naive threads=" << threads;
  }
}

// LCE_FASTMATH reorders dot-product accumulation: not bit-identical (that is
// the documented trade), but it must stay numerically close.
TEST(KernelEquivalenceTest, FastMathTransBIsCloseButUnordered) {
  KernelEnvGuard guard;
  Rng rng(5);
  Matrix a = RandomMatrix(3, 257, &rng);
  Matrix b = RandomMatrix(5, 257, &rng);
  simd::SetSimdEnabledForTesting(1);
  simd::SetFastMathEnabledForTesting(0);
  Matrix exact = MatMulTransB(a, b);
  simd::SetFastMathEnabledForTesting(1);
  Matrix fast = MatMulTransB(a, b);
  for (int r = 0; r < exact.rows(); ++r) {
    for (int c = 0; c < exact.cols(); ++c) {
      EXPECT_NEAR(fast.At(r, c), exact.At(r, c),
                  1e-4 * (1.0 + std::abs(exact.At(r, c))));
    }
  }
}

}  // namespace
}  // namespace nn
}  // namespace lce
