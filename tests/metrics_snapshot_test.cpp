#include "src/util/telemetry/metrics_snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "src/util/fs.h"
#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace telemetry {
namespace {

class MetricsSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "lce_metrics_snapshot_test.txt";
    SetMetricsEnabledForTesting(1);
  }
  void TearDown() override {
    SetMetricsSnapshotPathForTesting(nullptr);
    SetMetricsEnabledForTesting(-1);
  }
  std::string path_;
};

TEST_F(MetricsSnapshotTest, PrometheusNameSanitizes) {
  EXPECT_EQ(PrometheusName("telemetry.fr.records"),
            "lce_telemetry_fr_records");
  EXPECT_EQ(PrometheusName("ce.LW-XGB.latency.micros"),
            "lce_ce_LW_XGB_latency_micros");
  EXPECT_EQ(PrometheusName("already_ok:name"), "lce_already_ok:name");
}

TEST_F(MetricsSnapshotTest, EnabledFollowsPathOverride) {
  SetMetricsSnapshotPathForTesting("");
  EXPECT_FALSE(MetricsSnapshotEnabled());
  SetMetricsSnapshotPathForTesting(path_.c_str());
  EXPECT_TRUE(MetricsSnapshotEnabled());
  EXPECT_EQ(MetricsSnapshotPath(), path_);
}

TEST_F(MetricsSnapshotTest, RenderContainsCountersGaugesAndHistogramDigests) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.counter("snaptest.counter").AddAlways(3);
  reg.gauge("snaptest.gauge").SetAlways(2.5);
  reg.histogram("snaptest.hist").ObserveAlways(10.0);
  reg.histogram("snaptest.hist").ObserveAlways(30.0);

  std::string text = RenderMetricsSnapshot();
  EXPECT_EQ(text.rfind("# lce metrics snapshot", 0), 0u) << text.substr(0, 80);
  EXPECT_NE(text.find("lce_snaptest_counter 3\n"), std::string::npos);
  EXPECT_NE(text.find("lce_snaptest_gauge 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("lce_snaptest_hist_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("lce_snaptest_hist_sum 40\n"), std::string::npos);
  EXPECT_NE(text.find("lce_snaptest_hist_mean 20\n"), std::string::npos);
  EXPECT_NE(text.find("lce_snaptest_hist_p95 "), std::string::npos);
  // Exactly one space-separated value per line, no tabs or trailing spaces.
  size_t start = text.find('\n') + 1;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    std::string line = text.substr(start, end - start);
    EXPECT_EQ(std::count(line.begin(), line.end(), ' '), 1) << line;
    start = end + 1;
  }
}

TEST_F(MetricsSnapshotTest, WriteNowRoundTripsThroughFile) {
  MetricsRegistry::Global().counter("snaptest.write").AddAlways(1);
  ASSERT_TRUE(WriteMetricsSnapshotNow(path_).ok());
  std::string text;
  ASSERT_TRUE(fs::ReadFileToString(path_, &text).ok());
  EXPECT_NE(text.find("lce_snaptest_write "), std::string::npos);
  EXPECT_FALSE(WriteMetricsSnapshotNow("").ok());
}

TEST_F(MetricsSnapshotTest, WriteIfEnabledHonorsTheGate) {
  std::string gated = path_ + ".gated";
  std::remove(gated.c_str());
  SetMetricsSnapshotPathForTesting("");
  WriteMetricsSnapshotIfEnabled();  // disabled: writes nothing
  std::string text;
  EXPECT_FALSE(fs::ReadFileToString(gated, &text).ok());
  SetMetricsSnapshotPathForTesting(gated.c_str());
  WriteMetricsSnapshotIfEnabled();
  EXPECT_TRUE(fs::ReadFileToString(gated, &text).ok());
  EXPECT_EQ(text.rfind("# lce metrics snapshot", 0), 0u);
}

}  // namespace
}  // namespace telemetry
}  // namespace lce
