#include "src/util/telemetry/event_ring.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace telemetry {
namespace {

// The drainer thread runs through every test in this binary; tests that
// assert on pre-flush state pause it and restore it on teardown.
class EventRingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabledForTesting(1);
    FlushEventRings();
    MetricsRegistry::Global().ResetForTesting();
  }
  // Pauses the background drainer and waits out any pass already past the
  // pause check, so events emitted afterwards stay in their rings.
  void PauseDrainer() {
    SetDrainerPausedForTesting(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  void TearDown() override {
    SetDrainerPausedForTesting(false);
    SetEventRingSlotsForTesting(0);
    SetMetricsEnabledForTesting(-1);
    FlushEventRings();
    MetricsRegistry::Global().ResetForTesting();
  }
};

TEST_F(EventRingTest, InterningIsStableAndReversible) {
  uint32_t a = InternName("test.ring.name_a");
  uint32_t b = InternName("test.ring.name_b");
  EXPECT_NE(a, b);
  EXPECT_EQ(InternName("test.ring.name_a"), a);
  EXPECT_EQ(InternedNameOf(a), "test.ring.name_a");
  EXPECT_EQ(InternedNameOf(b), "test.ring.name_b");
}

TEST_F(EventRingTest, CounterEventsDrainIntoRegistry) {
  uint32_t id = InternName("test.ring.counter");
  EmitCounterAdd(id, 3);
  EmitCounterAdd(id, 4);
  FlushEventRings();
  EXPECT_EQ(MetricsRegistry::Global().counter("test.ring.counter").Value(),
            7u);
}

TEST_F(EventRingTest, WeightedHistogramEventsKeepCountAndBounds) {
  uint32_t id = InternName("test.ring.hist");
  EmitHistogram(id, 10.0, 5);  // five queries at 10 each
  EmitHistogram(id, 100.0, 1);
  FlushEventRings();
  HistogramSnapshot snap =
      MetricsRegistry::Global().histogram("test.ring.hist").Snapshot();
  EXPECT_EQ(snap.count, 6u);
  EXPECT_NEAR(snap.sum, 150.0, 1e-9);
  EXPECT_DOUBLE_EQ(snap.min, 10.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
}

TEST_F(EventRingTest, EventsStayBufferedUntilFlushWhenDrainerPaused) {
  PauseDrainer();
  Counter& c = MetricsRegistry::Global().counter("test.ring.paused");
  uint32_t id = InternName("test.ring.paused");
  EmitCounterAdd(id, 1);
  // The drainer is paused and nobody flushed: the registry cannot have seen
  // the event yet (it is sitting in this thread's ring).
  EXPECT_EQ(c.Value(), 0u);
  FlushEventRings();
  EXPECT_EQ(c.Value(), 1u);
}

TEST_F(EventRingTest, FullRingDropsAndAccountsEvents) {
  PauseDrainer();
  SetEventRingSlotsForTesting(64);
  uint64_t dropped_before = DroppedEventCount();
  uint64_t counter_before =
      MetricsRegistry::Global().counter("telemetry.dropped_events").Value();

  // A fresh thread gets a fresh (64-slot) ring; with the drainer paused,
  // pushing 1000 events must fill it and drop the rest on the floor.
  constexpr uint64_t kEvents = 1000;
  std::thread producer([] {
    uint32_t id = InternName("test.ring.drops");
    for (uint64_t i = 0; i < kEvents; ++i) EmitCounterAdd(id, 1);
  });
  producer.join();

  uint64_t dropped = DroppedEventCount() - dropped_before;
  EXPECT_GE(dropped, kEvents - 64);
  EXPECT_LT(dropped, kEvents);

  FlushEventRings();
  // Applied + dropped account for every emitted event, and the drop total
  // surfaced as the telemetry.dropped_events counter.
  uint64_t applied =
      MetricsRegistry::Global().counter("test.ring.drops").Value();
  EXPECT_EQ(applied + dropped, kEvents);
  EXPECT_EQ(MetricsRegistry::Global()
                    .counter("telemetry.dropped_events")
                    .Value() -
                counter_before,
            dropped);
}

TEST_F(EventRingTest, ConcurrentProducersNeverLoseAccounting) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  uint64_t dropped_before = DroppedEventCount();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      uint32_t id = InternName("test.ring.concurrent");
      for (uint64_t i = 0; i < kPerThread; ++i) EmitCounterAdd(id, 1);
    });
  }
  for (std::thread& t : threads) t.join();
  FlushEventRings();
  // Producers can outrun the 1ms drainer and overflow their rings; the
  // invariant is lossless accounting, not lossless delivery: every emitted
  // event is either applied or counted as dropped.
  uint64_t applied =
      MetricsRegistry::Global().counter("test.ring.concurrent").Value();
  uint64_t dropped = DroppedEventCount() - dropped_before;
  EXPECT_EQ(applied + dropped, kThreads * kPerThread);
  EXPECT_GT(applied, 0u);
}

TEST_F(EventRingTest, CapacityFollowsOverride) {
  SetEventRingSlotsForTesting(128);
  EXPECT_EQ(EventRingCapacityBytes() % 128, 0u);
  size_t overridden = EventRingCapacityBytes();
  SetEventRingSlotsForTesting(0);
  // Env-derived default (256 KiB unless LCE_EVENT_RING_KB says otherwise)
  // is far larger than the 128-slot override.
  EXPECT_GT(EventRingCapacityBytes(), overridden);
}

}  // namespace
}  // namespace telemetry
}  // namespace lce
