#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/ce/data_driven/spn.h"
#include "src/ce/explain.h"
#include "src/ce/factory.h"
#include "src/ce/traditional/histogram.h"
#include "src/ce/traditional/multidim_histogram.h"
#include "src/query/query.h"
#include "src/storage/datagen.h"
#include "src/util/json_writer.h"
#include "src/util/telemetry/telemetry.h"
#include "src/workload/generator.h"

namespace lce {
namespace ce {
namespace {

// A minimal estimator with no diagnostics override: exercises the base-class
// default, which must delegate to EstimateCardinality and fill the shape.
class ConstantEstimator : public Estimator {
 public:
  std::string Name() const override { return "Constant"; }
  Status Build(const storage::Database&,
               const std::vector<query::LabeledQuery>&) override {
    return Status::OK();
  }
  double EstimateCardinality(const query::Query&) override { return 42.0; }
  uint64_t SizeBytes() const override { return 0; }
};

TEST(ExplainTest, DefaultDelegationFillsShapeAndEstimate) {
  ConstantEstimator est;
  query::Query q;
  q.tables = {0};
  q.predicates = {{{0, 0}, 1, 5}, {{0, 1}, 2, 2}};
  ExplainRecord rec;
  double est_value = est.EstimateWithDiagnostics(q, &rec);
  EXPECT_DOUBLE_EQ(est_value, 42.0);
  EXPECT_DOUBLE_EQ(rec.estimate, 42.0);
  EXPECT_EQ(rec.estimator, "Constant");
  EXPECT_EQ(rec.num_tables, 1);
  EXPECT_EQ(rec.num_joins, 0);
  EXPECT_EQ(rec.num_predicates, 2);
}

TEST(ExplainTest, DiagnosticsBitIdenticalAcrossZoo) {
  // For every estimator in the zoo, a twin built with the same seed must
  // produce bit-identical estimates through EstimateWithDiagnostics — the
  // diagnostics only read values the plain path already computes (and, for
  // sampling-based models, consume no extra randomness).
  auto db = storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.02), 3);
  workload::WorkloadGenerator gen(db.get(), {});
  Rng rng(4);
  auto train = gen.GenerateLabeled(150, &rng);
  auto test = gen.GenerateLabeled(15, &rng);
  NeuralOptions neural;
  neural.hidden_dim = 16;
  neural.epochs = 3;

  for (const std::string& name : AllEstimatorNames()) {
    auto plain = MakeEstimator(name, neural, /*seed=*/9);
    auto diag = MakeEstimator(name, neural, /*seed=*/9);
    ASSERT_TRUE(plain->Build(*db, train).ok()) << name;
    ASSERT_TRUE(diag->Build(*db, train).ok()) << name;
    for (const auto& lq : test) {
      double e1 = plain->EstimateCardinality(lq.q);
      ExplainRecord rec;
      double e2 = diag->EstimateWithDiagnostics(lq.q, &rec);
      EXPECT_EQ(e1, e2) << name;  // bit-identical, not just approximately
      EXPECT_EQ(rec.estimate, e2) << name;
      EXPECT_EQ(rec.estimator, diag->Name()) << name;
      EXPECT_EQ(rec.num_predicates,
                static_cast<int>(lq.q.predicates.size()))
          << name;
    }
  }
}

TEST(ExplainTest, HistogramPerPredicateSelectivities) {
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(20000, 50, 0.0, 0.0), 5);
  HistogramEstimator est;
  ASSERT_TRUE(est.Build(*db, {}).ok());
  query::Query q;
  q.tables = {0};
  q.predicates = {{{0, 0}, 0, 24}, {{0, 1}, 10, 10}};
  ExplainRecord rec;
  double estimate = est.EstimateWithDiagnostics(q, &rec);
  ASSERT_EQ(rec.predicates.size(), 2u);
  double product = 1.0;
  for (const PredicateExplain& p : rec.predicates) {
    EXPECT_EQ(p.source, "mcv+equidepth");
    EXPECT_GE(p.selectivity, 0.0);
    EXPECT_LE(p.selectivity, 1.0);
    product *= p.selectivity;
  }
  // Single table: the estimate is rows * product of attributed selectivities.
  EXPECT_NEAR(estimate, 20000.0 * product, 1e-6 * estimate + 1e-6);
}

TEST(ExplainTest, MultiHistUniformFallbackCountedAndExplained) {
  telemetry::SetMetricsEnabledForTesting(1);
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(10000, 40, 0.0, 0.0), 6);
  MultiDimHistogramEstimator::Options opts;
  opts.max_dims = 1;  // only column a is gridded; b falls back to uniform
  MultiDimHistogramEstimator est(opts);
  ASSERT_TRUE(est.Build(*db, {}).ok());
  query::Query q;
  q.tables = {0};
  q.predicates = {{{0, 0}, 0, 19}, {{0, 1}, 0, 19}};
  telemetry::Counter& fallback_counter =
      telemetry::MetricsRegistry::Global().counter(
          "ce.multihist.uniform_fallback");
  uint64_t before = fallback_counter.Value();
  ExplainRecord rec;
  est.EstimateWithDiagnostics(q, &rec);
  EXPECT_EQ(fallback_counter.Value(), before + 1);
  ASSERT_EQ(rec.fallbacks.size(), 1u);
  EXPECT_EQ(rec.fallbacks[0].site, "multihist.uniform_column");
  // The same silent fallback fires on the plain path too.
  est.EstimateCardinality(q);
  EXPECT_EQ(fallback_counter.Value(), before + 2);
  bool found_grid = false, found_fallback = false;
  for (const PredicateExplain& p : rec.predicates) {
    if (p.source == "grid") found_grid = true;
    if (p.source == "uniform_fallback") found_fallback = true;
  }
  EXPECT_TRUE(found_grid);
  EXPECT_TRUE(found_fallback);
  telemetry::SetMetricsEnabledForTesting(-1);
}

TEST(ExplainTest, SpnKeyColumnUniformFallbackCountedAndExplained) {
  telemetry::SetMetricsEnabledForTesting(1);
  // A table with a key column: the SPN never models it, so a predicate on it
  // takes the uniform fallback. Workload validation forbids key predicates,
  // so the query is constructed directly.
  storage::datagen::DatabaseGenSpec spec;
  spec.name = "keyed";
  spec.tables.push_back(
      {"t", 5000, {{.name = "id", .is_key = true}, {.name = "a", .domain = 30}}});
  auto db = storage::datagen::Generate(spec, 7);
  SpnEstimator est;
  ASSERT_TRUE(est.Build(*db, {}).ok());
  query::Query q;
  q.tables = {0};
  q.predicates = {{{0, 0}, 0, 999}, {{0, 1}, 3, 9}};  // id constrained
  telemetry::Counter& fallback_counter =
      telemetry::MetricsRegistry::Global().counter("ce.spn.uniform_fallback");
  uint64_t before = fallback_counter.Value();
  ExplainRecord rec;
  double with_diag = est.EstimateWithDiagnostics(q, &rec);
  EXPECT_EQ(fallback_counter.Value(), before + 1);
  bool found = false;
  for (const FallbackEvent& f : rec.fallbacks) {
    if (f.site == "spn.key_column_uniform") found = true;
  }
  EXPECT_TRUE(found);
  // The plain path takes (and counts) the same fallback, same estimate.
  double plain = est.EstimateCardinality(q);
  EXPECT_EQ(fallback_counter.Value(), before + 2);
  EXPECT_EQ(plain, with_diag);
  telemetry::SetMetricsEnabledForTesting(-1);
}

TEST(ExplainTest, ModelCountersPerFamily) {
  auto db = storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.02), 8);
  workload::WorkloadGenerator gen(db.get(), {});
  Rng rng(9);
  auto train = gen.GenerateLabeled(150, &rng);
  auto test = gen.GenerateLabeled(5, &rng);
  NeuralOptions neural;
  neural.hidden_dim = 16;
  neural.epochs = 3;

  auto has_counter = [](const ExplainRecord& rec, const std::string& name) {
    for (const auto& [k, v] : rec.counters) {
      if (k == name) return true;
    }
    return false;
  };

  struct Expectation {
    const char* estimator;
    const char* counter;
  };
  const std::vector<Expectation> expectations = {
      {"LW-XGB", "max_path_depth"},   // GBDT tree-path depth
      {"FCN", "feat_l2"},             // featurization stats
      {"DeepDB-SPN", "leaf_visits"},  // SPN node visits
      {"Naru", "sampling_budget"},    // progressive-sampling budget
      {"Sampling", "sample_matches"},
  };
  for (const Expectation& e : expectations) {
    auto est = MakeEstimator(e.estimator, neural, 10);
    ASSERT_TRUE(est->Build(*db, train).ok()) << e.estimator;
    ExplainRecord rec;
    est->EstimateWithDiagnostics(test[0].q, &rec);
    EXPECT_TRUE(has_counter(rec, e.counter))
        << e.estimator << " missing counter " << e.counter;
  }
}

TEST(ExplainTest, ToJsonLineParsesAndRoundTrips) {
  ExplainRecord rec;
  rec.estimator = "FCN";
  rec.estimate = 123.5;
  rec.truth = 100;
  rec.qerror = 1.235;
  rec.latency_us = 17.25;
  rec.num_tables = 2;
  rec.num_joins = 1;
  rec.num_predicates = 1;
  rec.predicates.push_back({0, 1, 5, 9, 0.25, "mcv+equidepth"});
  rec.AddFallback("spn.key_column_uniform", "table=0 column=2");
  rec.AddCounter("leaf_visits", 12);

  std::string line = rec.ToJsonLine();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  json::JsonValue v;
  std::string error;
  ASSERT_TRUE(json::Parse(line, &v, &error)) << error;
  EXPECT_EQ(v.Find("estimator")->string, "FCN");
  EXPECT_DOUBLE_EQ(v.Find("estimate")->number, 123.5);
  EXPECT_DOUBLE_EQ(v.Find("qerror")->number, 1.235);
  EXPECT_EQ(v.Find("query")->Find("joins")->number, 1);
  ASSERT_EQ(v.Find("predicates")->array.size(), 1u);
  EXPECT_EQ(v.Find("predicates")->array[0].Find("source")->string,
            "mcv+equidepth");
  ASSERT_EQ(v.Find("fallbacks")->array.size(), 1u);
  EXPECT_EQ(v.Find("fallbacks")->array[0].Find("site")->string,
            "spn.key_column_uniform");
  EXPECT_DOUBLE_EQ(v.Find("counters")->Find("leaf_visits")->number, 12);

  // Unknown label fields serialize as null, not a sentinel number.
  ExplainRecord unlabeled;
  unlabeled.estimator = "Histogram";
  json::JsonValue u;
  ASSERT_TRUE(json::Parse(unlabeled.ToJsonLine(), &u, &error)) << error;
  EXPECT_EQ(u.Find("truth")->kind, json::JsonValue::Kind::kNull);
  EXPECT_EQ(u.Find("qerror")->kind, json::JsonValue::Kind::kNull);
  EXPECT_EQ(u.Find("latency_us")->kind, json::JsonValue::Kind::kNull);
}

}  // namespace
}  // namespace ce
}  // namespace lce
