#include "src/exec/oracle_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/exec/executor.h"
#include "src/storage/column_index.h"
#include "src/storage/datagen.h"
#include "src/util/rng.h"
#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace exec {
namespace {

using storage::DatabaseIndex;
using storage::JoinKeyIndex;
using storage::SortedColumnIndex;

TEST(SortedColumnIndexTest, EqualRangeMatchesLinearScan) {
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(3000, 37, 1.2, 0.6), 21);
  const SortedColumnIndex& index = db->index().Column(0, 0);
  const std::vector<storage::Value>& col = db->table(0).column(0);
  ASSERT_EQ(index.values.size(), col.size());
  ASSERT_TRUE(std::is_sorted(index.values.begin(), index.values.end()));
  for (auto [lo, hi] : std::vector<std::pair<storage::Value, storage::Value>>{
           {0, 0}, {5, 12}, {-3, 2}, {30, 99}, {40, 50}, {0, 99}}) {
    auto [first, last] = index.EqualRange(lo, hi);
    uint64_t expected = 0;
    for (storage::Value v : col) {
      if (v >= lo && v <= hi) ++expected;
    }
    EXPECT_EQ(last - first, expected) << "[" << lo << ", " << hi << "]";
    for (uint64_t i = first; i < last; ++i) {
      EXPECT_EQ(col[index.rows[i]], index.values[i]);
    }
  }
}

TEST(SortedColumnIndexTest, RebuildsAfterAppend) {
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(500, 10, 0.0, 0.0), 3);
  const SortedColumnIndex& before = db->index().Column(0, 1);
  EXPECT_EQ(before.values.size(), 500u);
  db->table(0).AppendRow({1, 2});
  db->table(0).Finalize();
  const SortedColumnIndex& after = db->index().Column(0, 1);
  EXPECT_EQ(after.values.size(), 501u);
}

TEST(JoinKeyIndexTest, DenseIdsAgreeWithValueEquality) {
  auto db =
      storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.02), 17);
  const auto& schema = db->schema();
  for (size_t e = 0; e < schema.joins.size(); ++e) {
    const JoinKeyIndex& jk = db->index().Edge(static_cast<int>(e));
    const storage::JoinEdge& je = schema.joins[e];
    int lt = schema.TableIndex(je.left_table);
    int rt = schema.TableIndex(je.right_table);
    const auto& lcol =
        db->table(lt).column(schema.tables[lt].ColumnIndex(je.left_column));
    const auto& rcol =
        db->table(rt).column(schema.tables[rt].ColumnIndex(je.right_column));
    ASSERT_EQ(jk.left_ids.size(), lcol.size());
    ASSERT_EQ(jk.right_ids.size(), rcol.size());
    // Ids are in range and order-isomorphic to the values on both sides.
    for (uint64_t r = 0; r + 1 < lcol.size(); ++r) {
      ASSERT_LT(jk.left_ids[r], jk.domain);
      ASSERT_EQ(lcol[r] < lcol[r + 1], jk.left_ids[r] < jk.left_ids[r + 1]);
      ASSERT_EQ(lcol[r] == lcol[r + 1], jk.left_ids[r] == jk.left_ids[r + 1]);
    }
    // Cross-side: equal values share an id (spot-check a stride of pairs).
    for (uint64_t i = 0; i < lcol.size(); i += 97) {
      for (uint64_t j = 0; j < rcol.size(); j += 89) {
        ASSERT_EQ(lcol[i] == rcol[j], jk.left_ids[i] == jk.right_ids[j]);
      }
    }
  }
}

TEST(OracleIndexTest, CountAndFilterMatchNaiveBitmap) {
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(4000, 25, 0.8, 0.7), 7);
  OracleIndex accel(db.get());
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    query::Query q;
    q.tables = {0};
    int npreds = static_cast<int>(rng.Below(3));
    for (int i = 0; i < npreds; ++i) {
      query::Predicate p;
      p.col.table = 0;
      p.col.column = static_cast<int>(rng.Below(2));
      p.lo = rng.UniformInt(-2, 20);
      p.hi = p.lo + rng.UniformInt(0, 8);
      q.predicates.push_back(p);
    }
    std::vector<uint8_t> bitmap = FilterBitmap(*db, q, 0);
    uint64_t expected = CountSet(bitmap);
    EXPECT_EQ(accel.CountFiltered(q, 0), expected);
    std::shared_ptr<const FilteredTable> filtered = accel.Filter(q, 0);
    EXPECT_EQ(filtered->count, expected);
    if (filtered->all_rows) {
      EXPECT_EQ(npreds, 0);
      EXPECT_EQ(expected, db->table(0).num_rows());
    } else {
      // Row order follows the leading predicate's sorted index, so compare
      // as sets: same rows, each exactly once.
      std::vector<uint32_t> got(filtered->rows);
      std::sort(got.begin(), got.end());
      std::vector<uint32_t> want;
      for (uint64_t r = 0; r < bitmap.size(); ++r) {
        if (bitmap[r]) want.push_back(static_cast<uint32_t>(r));
      }
      EXPECT_EQ(got, want);
    }
  }
}

TEST(OracleIndexTest, FilterCacheHitsAndEvicts) {
  telemetry::SetMetricsEnabledForTesting(1);
  telemetry::MetricsRegistry::Global().ResetForTesting();
  SetBitmapCacheCapacityForTesting(2);
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(1000, 10, 0.0, 0.0), 9);
  OracleIndex accel(db.get());
  auto& hits = telemetry::MetricsRegistry::Global().counter(
      "exec.bitmap_cache_hit");
  auto& misses = telemetry::MetricsRegistry::Global().counter(
      "exec.bitmap_cache_miss");
  auto make_query = [](storage::Value lo) {
    query::Query q;
    q.tables = {0};
    q.predicates = {{{0, 0}, lo, lo + 2}};
    return q;
  };
  accel.Filter(make_query(1), 0);  // miss
  accel.Filter(make_query(1), 0);  // hit
  EXPECT_EQ(misses.Value(), 1u);
  EXPECT_EQ(hits.Value(), 1u);
  accel.Filter(make_query(2), 0);  // miss (fills capacity)
  accel.Filter(make_query(3), 0);  // miss (evicts lo=1, the LRU entry)
  accel.Filter(make_query(1), 0);  // miss again: was evicted
  EXPECT_EQ(misses.Value(), 4u);
  EXPECT_EQ(hits.Value(), 1u);
  // An append changes the table version: cached entries must not serve.
  accel.Filter(make_query(3), 0);  // hit (still resident)
  EXPECT_EQ(hits.Value(), 2u);
  db->table(0).AppendRow({3, 3});
  db->table(0).Finalize();
  std::shared_ptr<const FilteredTable> fresh = accel.Filter(make_query(3), 0);
  EXPECT_EQ(hits.Value(), 2u);
  EXPECT_EQ(fresh->count, CountSet(FilterBitmap(*db, make_query(3), 0)));
  SetBitmapCacheCapacityForTesting(-1);
  telemetry::SetMetricsEnabledForTesting(-1);
  telemetry::MetricsRegistry::Global().ResetForTesting();
}

TEST(OracleIndexTest, EnvToggleRoundTrips) {
  SetOracleIndexEnabledForTesting(0);
  EXPECT_FALSE(OracleIndexEnabled());
  SetOracleIndexEnabledForTesting(1);
  EXPECT_TRUE(OracleIndexEnabled());
  SetOracleIndexEnabledForTesting(-1);
}

}  // namespace
}  // namespace exec
}  // namespace lce
