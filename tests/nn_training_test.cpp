// Training-dynamics and serialization tests of the NN substrate.

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "src/nn/adam.h"
#include "src/nn/loss.h"
#include "src/nn/mlp.h"
#include "src/nn/serialize.h"

namespace lce {
namespace nn {
namespace {

TEST(TrainingTest, MlpFitsQuadratic) {
  Rng rng(1);
  Mlp mlp({1, 16, 16, 1}, Activation::kRelu, Activation::kIdentity, &rng);
  Adam adam(5e-3f);
  // y = x^2 on [-1, 1].
  auto batch = [&](int n, Matrix* x, std::vector<float>* t) {
    *x = Matrix(n, 1);
    t->resize(n);
    for (int i = 0; i < n; ++i) {
      float v = static_cast<float>(rng.Uniform(-1, 1));
      x->At(i, 0) = v;
      (*t)[i] = v * v;
    }
  };
  double first_loss = 0, last_loss = 0;
  for (int step = 0; step < 800; ++step) {
    Matrix x;
    std::vector<float> t;
    batch(32, &x, &t);
    Matrix y = mlp.Forward(x);
    LossResult lr = ComputeLoss(LossKind::kMse, y, t);
    if (step == 0) first_loss = lr.loss;
    last_loss = lr.loss;
    mlp.Backward(lr.grad);
    adam.Step(mlp.Params());
  }
  EXPECT_LT(last_loss, first_loss * 0.1);
  EXPECT_LT(last_loss, 0.01);
}

TEST(TrainingTest, AdamZeroesGradientsAfterStep) {
  Rng rng(2);
  Mlp mlp({2, 3, 1}, Activation::kTanh, Activation::kIdentity, &rng);
  Matrix x = Matrix::Randn(4, 2, 1.0f, &rng);
  Matrix y = mlp.Forward(x);
  Matrix ones(4, 1, 1.0f);
  mlp.Backward(ones);
  Adam adam(1e-3f);
  adam.Step(mlp.Params());
  for (Param* p : mlp.Params()) {
    for (float g : p->grad.ToFlat()) EXPECT_FLOAT_EQ(g, 0.0f);
  }
}

TEST(TrainingTest, AdamStepChangesParameters) {
  Rng rng(3);
  Mlp mlp({2, 3, 1}, Activation::kTanh, Activation::kIdentity, &rng);
  std::vector<float> before;
  for (Param* p : mlp.Params()) {
    std::vector<float> flat = p->value.ToFlat();
    before.insert(before.end(), flat.begin(), flat.end());
  }
  Matrix x = Matrix::Randn(4, 2, 1.0f, &rng);
  mlp.Forward(x);
  Matrix ones(4, 1, 1.0f);
  mlp.Backward(ones);
  Adam adam(1e-2f);
  adam.Step(mlp.Params());
  std::vector<float> after;
  for (Param* p : mlp.Params()) {
    std::vector<float> flat = p->value.ToFlat();
    after.insert(after.end(), flat.begin(), flat.end());
  }
  EXPECT_NE(before, after);
}

TEST(SerializeTest, RoundTripRestoresOutputs) {
  Rng rng(4);
  Mlp source({3, 8, 1}, Activation::kRelu, Activation::kSigmoid, &rng);
  Matrix x = Matrix::Randn(5, 3, 1.0f, &rng);
  Matrix y_before = source.Forward(x);

  std::stringstream buffer;
  SaveParams(source.Params(), &buffer);

  Rng rng2(999);  // different init
  Mlp restored({3, 8, 1}, Activation::kRelu, Activation::kSigmoid, &rng2);
  ASSERT_TRUE(LoadParams(restored.Params(), &buffer).ok());
  Matrix y_after = restored.Forward(x);
  std::vector<float> flat_before = y_before.ToFlat();
  std::vector<float> flat_after = y_after.ToFlat();
  for (size_t i = 0; i < flat_before.size(); ++i) {
    EXPECT_FLOAT_EQ(flat_before[i], flat_after[i]);
  }
}

TEST(SerializeTest, LoadRejectsShapeMismatch) {
  Rng rng(5);
  Mlp a({3, 4, 1}, Activation::kRelu, Activation::kIdentity, &rng);
  Mlp b({3, 5, 1}, Activation::kRelu, Activation::kIdentity, &rng);
  std::stringstream buffer;
  SaveParams(a.Params(), &buffer);
  EXPECT_FALSE(LoadParams(b.Params(), &buffer).ok());
}

TEST(SerializeTest, LoadRejectsTruncatedStream) {
  Rng rng(6);
  Mlp a({3, 4, 1}, Activation::kRelu, Activation::kIdentity, &rng);
  std::stringstream buffer;
  SaveParams(a.Params(), &buffer);
  std::string data = buffer.str();
  std::stringstream truncated(data.substr(0, data.size() / 2));
  EXPECT_FALSE(LoadParams(a.Params(), &truncated).ok());
}

TEST(SerializeTest, ParamBytesCountsFloats) {
  Rng rng(7);
  Mlp mlp({2, 3, 1}, Activation::kRelu, Activation::kIdentity, &rng);
  // (2*3 + 3) + (3*1 + 1) = 13 floats.
  EXPECT_EQ(ParamBytes(mlp.Params()), 13 * sizeof(float));
  EXPECT_EQ(mlp.NumParams(), 13u);
}

}  // namespace
}  // namespace nn
}  // namespace lce
