#include "src/util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace lce {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(5);
  for (uint32_t bound : {1u, 2u, 7u, 100u, 1000000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.Uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(8);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(10);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), original.begin()));
  EXPECT_NE(v, original);  // vanishingly unlikely to be identity
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(11);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.Weighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.03);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(12);
  Rng child = a.Fork();
  // The child must not replay the parent's stream.
  Rng b(12);
  b.Fork();
  EXPECT_EQ(a.NextU32(), b.NextU32());  // parents stay in sync
  int same = 0;
  Rng a2(12);
  Rng child2 = a2.Fork();
  for (int i = 0; i < 64; ++i) {
    if (child.NextU32() != child2.NextU32()) ++same;
  }
  EXPECT_EQ(same, 0);  // forking is deterministic too
}

struct ZipfCase {
  double theta;
  uint64_t n;
};

class ZipfTest : public ::testing::TestWithParam<ZipfCase> {};

TEST_P(ZipfTest, SamplesStayInDomain) {
  Rng rng(13);
  ZipfSampler zipf(GetParam().n, GetParam().theta);
  for (int i = 0; i < 3000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), GetParam().n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Domains, ZipfTest,
    ::testing::Values(ZipfCase{0.0, 1}, ZipfCase{0.0, 10},
                      ZipfCase{0.5, 100}, ZipfCase{1.0, 1000},
                      ZipfCase{1.5, 17}, ZipfCase{2.0, 100000}));

TEST(ZipfTest, ThetaZeroIsRoughlyUniform) {
  Rng rng(14);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c / 20000.0, 0.1, 0.02);
}

TEST(ZipfTest, HigherThetaIsMoreSkewed) {
  Rng rng(15);
  auto top_fraction = [&](double theta) {
    ZipfSampler zipf(100, theta);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) {
      if (zipf.Sample(&rng) == 0) ++hits;
    }
    return hits / 20000.0;
  };
  double f0 = top_fraction(0.0);
  double f1 = top_fraction(1.0);
  double f2 = top_fraction(2.0);
  EXPECT_LT(f0, f1);
  EXPECT_LT(f1, f2);
  EXPECT_GT(f2, 0.5);  // theta=2 concentrates most mass on the head
}

}  // namespace
}  // namespace lce
