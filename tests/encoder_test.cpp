#include "src/query/encoder.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/exec/executor.h"
#include "src/storage/datagen.h"

namespace lce {
namespace query {
namespace {

class EncoderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.02), 1);
    encoder_ = std::make_unique<QueryEncoder>(db_.get(),
                                              QueryEncoder::Options{}, 7);
  }
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<QueryEncoder> encoder_;
};

TEST_F(EncoderTest, FlatDimensionsMatchSchema) {
  int tables = db_->num_tables();
  int joins = static_cast<int>(db_->schema().joins.size());
  int cols = db_->schema().TotalColumns();
  EXPECT_EQ(encoder_->flat_dim(), tables + joins + 2 * cols);
  EXPECT_EQ(encoder_->flat_dim_for(FlatVariant::kRangeOnly), 2 * cols);
  EXPECT_EQ(encoder_->flat_dim_for(FlatVariant::kCoarse),
            encoder_->flat_dim());
}

TEST_F(EncoderTest, FlatEncodingMarksStructure) {
  Query q;
  q.tables = {0, 1};
  q.join_edges = {0};
  std::vector<float> enc = encoder_->FlatEncode(q);
  EXPECT_FLOAT_EQ(enc[0], 1.0f);  // title
  EXPECT_FLOAT_EQ(enc[1], 1.0f);  // movie_companies
  EXPECT_FLOAT_EQ(enc[2], 0.0f);
  EXPECT_FLOAT_EQ(enc[db_->num_tables()], 1.0f);  // join edge 0
}

TEST_F(EncoderTest, UnconstrainedColumnsEncodeFullRange) {
  Query q;
  q.tables = {0};
  std::vector<float> enc = encoder_->FlatEncode(q);
  int base = db_->num_tables() + static_cast<int>(db_->schema().joins.size());
  for (int c = 0; c < db_->schema().TotalColumns(); ++c) {
    EXPECT_FLOAT_EQ(enc[base + 2 * c], 0.0f);
    EXPECT_FLOAT_EQ(enc[base + 2 * c + 1], 1.0f);
  }
}

TEST_F(EncoderTest, PredicateNormalizationUsesColumnStats) {
  const storage::Table& title = db_->table(0);
  storage::Value min = title.stats(1).min;
  storage::Value max = title.stats(1).max;
  Query q;
  q.tables = {0};
  q.predicates = {{{0, 1}, min, max}};
  std::vector<float> enc = encoder_->FlatEncode(q);
  int base = db_->num_tables() + static_cast<int>(db_->schema().joins.size());
  int gc = db_->schema().GlobalColumnIndex("title", "kind_id");
  EXPECT_FLOAT_EQ(enc[base + 2 * gc], 0.0f);
  EXPECT_FLOAT_EQ(enc[base + 2 * gc + 1], 1.0f);
  // A midpoint predicate lands strictly inside (0, 1).
  q.predicates[0].lo = (min + max) / 2;
  q.predicates[0].hi = (min + max) / 2;
  enc = encoder_->FlatEncode(q);
  EXPECT_GT(enc[base + 2 * gc], 0.1f);
  EXPECT_LT(enc[base + 2 * gc + 1], 0.9f);
}

TEST_F(EncoderTest, CoarseVariantQuantizes) {
  Query q;
  q.tables = {0};
  q.predicates = {{{0, 2}, 13, 77}};
  std::vector<float> full = encoder_->FlatEncode(q, FlatVariant::kFull);
  std::vector<float> coarse = encoder_->FlatEncode(q, FlatVariant::kCoarse);
  for (float v : coarse) {
    float scaled = v * 10.0f;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-4);
  }
  EXPECT_EQ(full.size(), coarse.size());
}

TEST_F(EncoderTest, MscnSetsHaveDocumentedShapes) {
  Query q;
  q.tables = {0, 1, 2};
  q.join_edges = {0, 1};
  q.predicates = {{{0, 1}, 0, 2}};
  MscnSets sets = encoder_->MscnEncode(q);
  EXPECT_EQ(sets.tables.size(), 3u);
  EXPECT_EQ(sets.joins.size(), 2u);
  EXPECT_EQ(sets.predicates.size(), 1u);
  for (const auto& t : sets.tables) {
    EXPECT_EQ(t.size(), static_cast<size_t>(encoder_->mscn_table_dim()));
  }
  EXPECT_EQ(sets.joins[0].size(),
            static_cast<size_t>(encoder_->mscn_join_dim()));
  EXPECT_EQ(sets.predicates[0].size(),
            static_cast<size_t>(encoder_->mscn_pred_dim()));
}

TEST_F(EncoderTest, MscnEmptySetsGetZeroToken) {
  Query q;
  q.tables = {0};
  MscnSets sets = encoder_->MscnEncode(q);
  ASSERT_EQ(sets.joins.size(), 1u);
  ASSERT_EQ(sets.predicates.size(), 1u);
  for (float v : sets.joins[0]) EXPECT_FLOAT_EQ(v, 0.0f);
  for (float v : sets.predicates[0]) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST_F(EncoderTest, MscnBitmapTracksSelectivity) {
  // An unconstrained table has an all-ones bitmap; a very selective predicate
  // leaves almost no bits set.
  Query open;
  open.tables = {0};
  MscnSets open_sets = encoder_->MscnEncode(open);
  int bitmap_base = db_->num_tables();
  int sample = encoder_->mscn_table_dim() - bitmap_base;
  double open_bits = 0;
  for (int s = 0; s < sample; ++s) {
    open_bits += open_sets.tables[0][bitmap_base + s];
  }
  EXPECT_DOUBLE_EQ(open_bits, sample);

  Query narrow = open;
  narrow.predicates = {{{0, 2}, -1000000, -999999}};  // empty range
  MscnSets narrow_sets = encoder_->MscnEncode(narrow);
  double narrow_bits = 0;
  for (int s = 0; s < sample; ++s) {
    narrow_bits += narrow_sets.tables[0][bitmap_base + s];
  }
  EXPECT_DOUBLE_EQ(narrow_bits, 0);
}

TEST_F(EncoderTest, SequenceHasOneTokenPerItem) {
  Query q;
  q.tables = {0, 1};
  q.join_edges = {0};
  q.predicates = {{{0, 1}, 0, 2}, {{1, 1}, 5, 9}};
  auto seq = encoder_->SequenceEncode(q);
  EXPECT_EQ(seq.size(), 2u + 1u + 2u);  // tables + joins + predicates
  for (const auto& token : seq) {
    EXPECT_EQ(token.size(), static_cast<size_t>(encoder_->seq_token_dim()));
  }
}

TEST_F(EncoderTest, LabelTransformRoundTrips) {
  for (double card : {1.0, 10.0, 1234.0, 1e6}) {
    float y = encoder_->NormalizeLog(card);
    EXPECT_GE(y, 0.0f);
    EXPECT_LE(y, 1.0f);
    EXPECT_NEAR(encoder_->DenormalizeLog(y), card, card * 1e-3);
  }
  // Sub-one cardinalities clamp to one tuple.
  EXPECT_DOUBLE_EQ(encoder_->DenormalizeLog(encoder_->NormalizeLog(0.0)), 1.0);
}

}  // namespace
}  // namespace query
}  // namespace lce
