#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/ce/data_driven/naru.h"
#include "src/ce/explain.h"
#include "src/ce/traditional/histogram.h"
#include "src/eval/metrics.h"
#include "src/exec/executor.h"
#include "src/storage/datagen.h"
#include "src/util/fs.h"
#include "src/util/json_writer.h"
#include "src/util/telemetry/query_log.h"
#include "src/workload/generator.h"

namespace lce {
namespace telemetry {
namespace {

std::vector<json::JsonValue> ReadJsonl(const std::string& path) {
  std::string text;
  EXPECT_TRUE(fs::ReadFileToString(path, &text).ok()) << path;
  std::vector<json::JsonValue> out;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) {
      json::JsonValue v;
      std::string error;
      EXPECT_TRUE(json::Parse(text.substr(start, end - start), &v, &error))
          << error;
      out.push_back(std::move(v));
    }
    start = end + 1;
  }
  return out;
}

class QueryLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "lce_query_log_test.jsonl";
    SetQueryLogPathForTesting(path_.c_str());
  }
  void TearDown() override { SetQueryLogPathForTesting(nullptr); }
  std::string path_;
};

TEST_F(QueryLogTest, AppendFlushRoundTrip) {
  ce::ExplainRecord rec;
  rec.estimator = "Histogram";
  rec.estimate = 10;
  QueryLog::Global().Append(rec.ToJsonLine());
  rec.estimator = "FCN";
  rec.estimate = 20;
  QueryLog::Global().Append(rec.ToJsonLine());
  EXPECT_EQ(QueryLog::Global().lines_appended(), 2u);
  ASSERT_TRUE(QueryLog::Global().Flush().ok());
  std::vector<json::JsonValue> lines = ReadJsonl(path_);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].Find("estimator")->string, "Histogram");
  EXPECT_EQ(lines[1].Find("estimator")->string, "FCN");
  EXPECT_DOUBLE_EQ(lines[1].Find("estimate")->number, 20);
}

TEST_F(QueryLogTest, DisabledSinkDropsAppends) {
  SetQueryLogPathForTesting("");
  EXPECT_FALSE(QueryLogEnabled());
  QueryLog::Global().Append("{\"estimator\":\"x\"}");
  EXPECT_EQ(QueryLog::Global().lines_appended(), 0u);
}

TEST_F(QueryLogTest, MeasureEstimateLatencyStreamsRecords) {
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(10000, 40, 0.0, 0.0), 3);
  ce::HistogramEstimator est;
  ASSERT_TRUE(est.Build(*db, {}).ok());
  workload::WorkloadOptions opts;
  opts.max_joins = 0;
  workload::WorkloadGenerator gen(db.get(), opts);
  Rng rng(4);
  auto test = gen.GenerateLabeled(30, &rng);
  eval::LatencyReport report = eval::MeasureEstimateLatency(&est, test, 20);
  EXPECT_EQ(report.measured, 20u);
  ASSERT_TRUE(QueryLog::Global().Flush().ok());
  std::vector<json::JsonValue> lines = ReadJsonl(path_);
  ASSERT_EQ(lines.size(), 20u);
  ce::HistogramEstimator twin;
  ASSERT_TRUE(twin.Build(*db, {}).ok());
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].Find("estimator")->string, "Histogram");
    EXPECT_EQ(lines[i].Find("kind")->string, "estimate");
    EXPECT_GE(lines[i].Find("latency_us")->number, 0.0);
    EXPECT_GE(lines[i].Find("qerror")->number, 1.0);
    EXPECT_DOUBLE_EQ(lines[i].Find("truth")->number, test[i].cardinality);
    // The logged estimate is the plain-path estimate (12 significant digits
    // through the serializer).
    double expected = twin.EstimateCardinality(test[i].q);
    EXPECT_NEAR(lines[i].Find("estimate")->number, expected,
                1e-9 * std::max(1.0, expected));
  }
}

TEST_F(QueryLogTest, ExecutorLogsOnlyWhenOptedIn) {
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(5000, 20, 0.0, 0.0), 5);
  query::Query q;
  q.tables = {0};
  q.predicates = {{{0, 0}, 0, 9}};

  exec::Executor silent(db.get());
  double truth = silent.Cardinality(q);
  EXPECT_EQ(QueryLog::Global().lines_appended(), 0u);

  exec::Executor oracle(db.get());
  oracle.EnableQueryLog();
  EXPECT_EQ(oracle.Cardinality(q), truth);
  EXPECT_EQ(QueryLog::Global().lines_appended(), 1u);
  ASSERT_TRUE(QueryLog::Global().Flush().ok());
  std::vector<json::JsonValue> lines = ReadJsonl(path_);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].Find("kind")->string, "exec");
  EXPECT_EQ(lines[0].Find("estimator")->string, "exec.oracle");
  EXPECT_DOUBLE_EQ(lines[0].Find("estimate")->number,
                   lines[0].Find("truth")->number);
  EXPECT_DOUBLE_EQ(lines[0].Find("qerror")->number, 1.0);
}

TEST_F(QueryLogTest, EstimatesUnchangedByLogging) {
  // A progressive-sampling estimator (rng consumed per estimate) run through
  // the instrumented latency path must produce the same estimates a twin
  // produces on the plain path with the sink disabled.
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(8000, 30, 0.5, 0.3), 6);
  workload::WorkloadOptions opts;
  opts.max_joins = 0;
  workload::WorkloadGenerator gen(db.get(), opts);
  Rng rng(7);
  auto test = gen.GenerateLabeled(12, &rng);

  SetQueryLogPathForTesting("");  // sink off: plain path
  ce::NaruEstimator plain;
  ASSERT_TRUE(plain.Build(*db, {}).ok());
  std::vector<double> expected;
  for (const auto& lq : test) {
    expected.push_back(plain.EstimateCardinality(lq.q));
  }

  SetQueryLogPathForTesting(path_.c_str());  // sink on: diagnostics path
  ce::NaruEstimator logged;
  ASSERT_TRUE(logged.Build(*db, {}).ok());
  eval::MeasureEstimateLatency(&logged, test, test.size());
  ASSERT_TRUE(QueryLog::Global().Flush().ok());
  std::vector<json::JsonValue> lines = ReadJsonl(path_);
  ASSERT_EQ(lines.size(), test.size());
  for (size_t i = 0; i < test.size(); ++i) {
    EXPECT_NEAR(lines[i].Find("estimate")->number, expected[i],
                1e-9 * std::max(1.0, expected[i]))
        << i;
  }
}

}  // namespace
}  // namespace telemetry
}  // namespace lce
