#include "src/util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace lce {
namespace {

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2);
  EXPECT_DOUBLE_EQ(Percentile(v, 90), 4.6);
}

TEST(StatsTest, PercentileHandlesDegenerateSamples) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0);
  EXPECT_DOUBLE_EQ(Percentile({7.5}, 99), 7.5);
}

TEST(StatsTest, MeanAndGeometricMean) {
  EXPECT_DOUBLE_EQ(Mean({2, 4, 6}), 4);
  EXPECT_NEAR(GeometricMean({1, 100}), 10, 1e-9);
  EXPECT_DOUBLE_EQ(Mean({}), 0);
}

TEST(StatsTest, StdDevSampleFormula) {
  EXPECT_DOUBLE_EQ(StdDev({2, 4}), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(StdDev({5}), 0);
}

TEST(StatsTest, SummarizeMatchesComponents) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  SampleSummary s = Summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.max, 100);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
}

TEST(StatsTest, JsdIdenticalDistributionsIsZero) {
  EXPECT_NEAR(JensenShannonDivergence({1, 2, 3}, {2, 4, 6}), 0, 1e-12);
}

TEST(StatsTest, JsdIsSymmetricAndBounded) {
  std::vector<double> p = {0.9, 0.1, 0.0};
  std::vector<double> q = {0.1, 0.2, 0.7};
  double pq = JensenShannonDivergence(p, q);
  double qp = JensenShannonDivergence(q, p);
  EXPECT_NEAR(pq, qp, 1e-12);
  EXPECT_GT(pq, 0);
  EXPECT_LE(pq, std::log(2.0) + 1e-12);
}

TEST(StatsTest, JsdDisjointSupportHitsMaximum) {
  EXPECT_NEAR(JensenShannonDivergence({1, 0}, {0, 1}), std::log(2.0), 1e-12);
}

TEST(StatsTest, PearsonCorrelationEndpoints) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y_pos = {2, 4, 6, 8};
  std::vector<double> y_neg = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y_pos), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, y_neg), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, {5, 5, 5, 5}), 0);
}

}  // namespace
}  // namespace lce
