#include "src/util/logging.h"

#include <string>

#include <gtest/gtest.h>

namespace lce {
namespace logging {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { ResetMinSeverityForTesting(); }
};

TEST_F(LoggingTest, MessagesBelowThresholdNeverEvaluateOperands) {
  SetMinSeverityForTesting(Severity::kWARN);
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return 1;
  };
  LCE_LOG(DEBUG) << count();
  LCE_LOG(INFO) << count();
  EXPECT_EQ(evaluations, 0);
  testing::internal::CaptureStderr();
  LCE_LOG(WARN) << count();
  testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, EmitsSingleTaggedLine) {
  SetMinSeverityForTesting(Severity::kDEBUG);
  testing::internal::CaptureStderr();
  LCE_LOG(ERROR) << "failure " << 42;
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[LCE E"), std::string::npos);
  EXPECT_NE(out.find("logging_test.cpp"), std::string::npos);
  EXPECT_NE(out.find("failure 42"), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
  EXPECT_EQ(out.find('\n'), out.size() - 1);  // exactly one line
}

TEST_F(LoggingTest, OffSilencesEverything) {
  SetMinSeverityForTesting(Severity::kOFF);
  testing::internal::CaptureStderr();
  LCE_LOG(ERROR) << "should not appear";
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, LogEveryNSamplesFirstThenEveryNth) {
  SetMinSeverityForTesting(Severity::kDEBUG);
  testing::internal::CaptureStderr();
  for (int i = 0; i < 7; ++i) {
    LCE_LOG_EVERY_N(INFO, 3) << "tick " << i;
  }
  std::string out = testing::internal::GetCapturedStderr();
  // Executions 0, 3, 6 log.
  EXPECT_NE(out.find("tick 0"), std::string::npos);
  EXPECT_EQ(out.find("tick 1"), std::string::npos);
  EXPECT_EQ(out.find("tick 2"), std::string::npos);
  EXPECT_NE(out.find("tick 3"), std::string::npos);
  EXPECT_NE(out.find("tick 6"), std::string::npos);
}

TEST_F(LoggingTest, SeverityOrderingMatchesThreshold) {
  SetMinSeverityForTesting(Severity::kINFO);
  testing::internal::CaptureStderr();
  LCE_LOG(DEBUG) << "hidden";
  LCE_LOG(INFO) << "shown-info";
  LCE_LOG(WARN) << "shown-warn";
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("shown-info"), std::string::npos);
  EXPECT_NE(out.find("shown-warn"), std::string::npos);
}

}  // namespace
}  // namespace logging
}  // namespace lce
