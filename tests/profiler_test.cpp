#include "src/util/telemetry/profiler.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/fs.h"
#include "src/util/parallel.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/telemetry/trace.h"

namespace lce {
namespace telemetry {
namespace {

// Profiling is driven by the same span stream as tracing; every test starts
// with both gates off and restores the env-derived state afterwards.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabledForTesting(1);
    SetTracePathForTesting("");
    SetProfilePathForTesting("");
    ClearTraceForTesting();
    MetricsRegistry::Global().ResetForTesting();
  }
  void TearDown() override {
    SetMetricsEnabledForTesting(-1);
    SetTracePathForTesting(nullptr);
    SetProfilePathForTesting(nullptr);
    ClearTraceForTesting();
    MetricsRegistry::Global().ResetForTesting();
    parallel::SetThreadCountForTesting(0);
  }
};

TraceEvent MakeSpan(std::string name, uint64_t id, uint64_t parent,
                    int64_t dur_us) {
  TraceEvent e;
  e.name = std::move(name);
  e.id = id;
  e.parent_id = parent;
  e.start_ns = static_cast<int64_t>(id) * 1000;
  e.dur_ns = dur_us * 1000;
  return e;
}

const ProfileNode* FindPath(const std::vector<ProfileNode>& nodes,
                            const std::string& path) {
  for (const ProfileNode& n : nodes) {
    if (n.path == path) return &n;
  }
  return nullptr;
}

TEST_F(ProfilerTest, BuildProfileAggregatesByPath) {
  // root (100us) covers two same-named children (60us + 30us); both fold
  // into one "root;child" node and root keeps 10us of self time.
  std::vector<TraceEvent> events;
  events.push_back(MakeSpan("root", 1, 0, 100));
  events.push_back(MakeSpan("child", 2, 1, 60));
  events.push_back(MakeSpan("child", 3, 1, 30));
  std::vector<ProfileNode> nodes = BuildProfile(events);
  ASSERT_EQ(nodes.size(), 2u);

  const ProfileNode* root = FindPath(nodes, "root");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "root");
  EXPECT_EQ(root->depth, 0);
  EXPECT_EQ(root->count, 1u);
  EXPECT_EQ(root->total_ns, 100000);
  EXPECT_EQ(root->self_ns, 10000);

  const ProfileNode* child = FindPath(nodes, "root;child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->name, "child");
  EXPECT_EQ(child->depth, 1);
  EXPECT_EQ(child->count, 2u);
  EXPECT_EQ(child->total_ns, 90000);
  EXPECT_EQ(child->self_ns, 90000);

  // Sorted by descending self time: the child path leads.
  EXPECT_EQ(nodes[0].path, "root;child");
}

TEST_F(ProfilerTest, OrphansRootThemselvesAndParallelSelfClampsAtZero) {
  std::vector<TraceEvent> events;
  // Parent whose two children ran concurrently on pool threads: child time
  // (8 + 8) exceeds the parent's 10us wall time, so self clamps to zero.
  events.push_back(MakeSpan("parent", 1, 0, 10));
  events.push_back(MakeSpan("lane", 2, 1, 8));
  events.push_back(MakeSpan("lane", 3, 1, 8));
  // Span whose parent id was never recorded (still open at export): it must
  // root its own subtree instead of vanishing.
  events.push_back(MakeSpan("orphan", 5, 99, 7));
  std::vector<ProfileNode> nodes = BuildProfile(events);

  const ProfileNode* parent = FindPath(nodes, "parent");
  ASSERT_NE(parent, nullptr);
  EXPECT_EQ(parent->self_ns, 0);
  EXPECT_EQ(parent->total_ns, 10000);

  const ProfileNode* orphan = FindPath(nodes, "orphan");
  ASSERT_NE(orphan, nullptr);
  EXPECT_EQ(orphan->depth, 0);
  EXPECT_EQ(orphan->total_ns, 7000);
}

TEST_F(ProfilerTest, ToCollapsedEmitsSelfMicrosAndSanitizesSemicolons) {
  std::vector<TraceEvent> events;
  events.push_back(MakeSpan("build;FCN", 1, 0, 50));  // ';' inside a name
  events.push_back(MakeSpan("MatMul", 2, 1, 50));     // eats all parent time
  std::string collapsed = ToCollapsed(BuildProfile(events));
  // The parent's self time is zero, so only the leaf line appears, and the
  // name's semicolon is rewritten to keep the path separator unambiguous.
  EXPECT_EQ(collapsed, "build:FCN;MatMul 50\n");
}

TEST_F(ProfilerTest, PoolSubmittedSpansFoldUnderSubmittingSpan) {
  // LCE_PROFILE alone (no trace path) must record spans, and work submitted
  // to the pool must aggregate under the submitting span's path.
  const std::string path = ::testing::TempDir() + "profiler_test.collapsed";
  SetProfilePathForTesting(path.c_str());
  ASSERT_TRUE(ProfileEnabled());
  ASSERT_FALSE(TraceEnabled());
  EXPECT_EQ(ProfilePath(), path);

  parallel::SetThreadCountForTesting(4);
  {
    TraceSpan submit("profile_root");
    parallel::ParallelFor(0, 16, 1, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        TraceSpan span("pool_leaf");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  std::vector<ProfileNode> nodes = SnapshotProfileForTesting();
  const ProfileNode* root = FindPath(nodes, "profile_root");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->count, 1u);

  // Leaves may sit directly under the root or under an intermediate pool
  // span, but every one of the 16 must fold into the root's subtree.
  uint64_t leaves = 0;
  for (const ProfileNode& n : nodes) {
    if (n.name != "pool_leaf") continue;
    EXPECT_EQ(n.path.rfind("profile_root;", 0), 0u) << n.path;
    EXPECT_GE(n.depth, 1);
    leaves += n.count;
  }
  EXPECT_EQ(leaves, 16u);

  // The export path writes those same nodes as collapsed stacks.
  ASSERT_TRUE(WriteProfileNow().ok());
  std::string contents;
  ASSERT_TRUE(fs::ReadFileToString(path, &contents).ok());
  EXPECT_NE(contents.find("pool_leaf"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace telemetry
}  // namespace lce
