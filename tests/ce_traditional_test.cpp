#include <gtest/gtest.h>

#include "src/ce/traditional/histogram.h"
#include "src/ce/traditional/multidim_histogram.h"
#include "src/ce/traditional/sampling.h"
#include "src/eval/metrics.h"
#include "src/exec/executor.h"
#include "src/storage/datagen.h"
#include "src/workload/generator.h"

namespace lce {
namespace ce {
namespace {

TEST(EquiDepthHistogramTest, FullRangeCoversAllMass) {
  EquiDepthHistogram h;
  std::vector<storage::Value> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i % 97);
  h.Build(values, 16);
  EXPECT_NEAR(h.FractionInRange(0, 96), 1.0, 0.05);
  EXPECT_DOUBLE_EQ(h.FractionInRange(200, 300), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionInRange(50, 40), 0.0);  // inverted
}

TEST(EquiDepthHistogramTest, HalfRangeOnUniformIsHalf) {
  EquiDepthHistogram h;
  std::vector<storage::Value> values;
  for (int i = 0; i < 10000; ++i) values.push_back(i % 100);
  h.Build(values, 32);
  EXPECT_NEAR(h.FractionInRange(0, 49), 0.5, 0.05);
  EXPECT_NEAR(h.FractionInRange(25, 74), 0.5, 0.05);
}

TEST(McvListTest, RangeMembership) {
  McvList mcv;
  mcv.values = {5, 10, 20};
  mcv.fractions = {0.3, 0.2, 0.1};
  mcv.total_fraction = 0.6;
  EXPECT_DOUBLE_EQ(mcv.FractionInRange(5, 10), 0.5);
  EXPECT_DOUBLE_EQ(mcv.FractionInRange(6, 9), 0.0);
  EXPECT_DOUBLE_EQ(mcv.FractionInRange(0, 100), 0.6);
}

TEST(HistogramEstimatorTest, ExactOnPointQueryOfHeavyValue) {
  // A huge MCV must be estimated almost exactly.
  storage::datagen::DatabaseGenSpec spec =
      storage::datagen::SyntheticPairSpec(20000, 50, 2.0, 0.0);
  auto db = storage::datagen::Generate(spec, 3);
  exec::Executor ex(db.get());
  HistogramEstimator est;
  ASSERT_TRUE(est.Build(*db, {}).ok());

  query::Query q;
  q.tables = {0};
  q.predicates = {{{0, 0}, 0, 0}};  // the Zipf head value
  double truth = ex.Cardinality(q);
  ASSERT_GT(truth, 1000);  // theta=2 concentrates the head
  EXPECT_LT(eval::QError(est.EstimateCardinality(q), truth), 1.2);
}

TEST(HistogramEstimatorTest, ReasonableOnSingleTableWorkload) {
  auto db = storage::datagen::Generate(storage::datagen::DmvLikeSpec(0.2), 5);
  HistogramEstimator est;
  ASSERT_TRUE(est.Build(*db, {}).ok());
  workload::WorkloadOptions opts;
  opts.max_joins = 0;
  workload::WorkloadGenerator gen(db.get(), opts);
  Rng rng(6);
  auto test = gen.GenerateLabeled(150, &rng);
  auto report = eval::EvaluateAccuracy(&est, test);
  EXPECT_LT(report.summary.p50, 3.0);
}

TEST(HistogramEstimatorTest, IndependenceFailsOnStrongCorrelation) {
  // With a functional dependency b = f(a), conjunctive point predicates have
  // true selectivity = sel(a) (when consistent), but independence predicts
  // sel(a) * sel(b): the classic underestimation.
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(30000, 40, 0.0, 1.0), 7);
  exec::Executor ex(db.get());
  HistogramEstimator est;
  ASSERT_TRUE(est.Build(*db, {}).ok());
  // Find a consistent (a, b) pair from the data.
  storage::Value a = db->table(0).column(0)[0];
  storage::Value b = db->table(0).column(1)[0];
  query::Query q;
  q.tables = {0};
  q.predicates = {{{0, 0}, a, a}, {{0, 1}, b, b}};
  double truth = ex.Cardinality(q);
  double estimate = est.EstimateCardinality(q);
  ASSERT_GT(truth, 100);
  EXPECT_LT(estimate, truth * 0.5);  // systematic underestimate
}

TEST(HistogramEstimatorTest, UpdateWithDataRefreshesStats) {
  storage::datagen::DatabaseGenSpec spec =
      storage::datagen::SyntheticPairSpec(5000, 20, 0.0, 0.0);
  auto db = storage::datagen::Generate(spec, 8);
  HistogramEstimator est;
  ASSERT_TRUE(est.Build(*db, {}).ok());
  query::Query q;
  q.tables = {0};
  double before = est.EstimateCardinality(q);
  storage::datagen::AppendShifted(db.get(), spec, 1.0, 0.0, 0.0, 9);
  ASSERT_TRUE(est.UpdateWithData(*db).ok());
  double after = est.EstimateCardinality(q);
  EXPECT_NEAR(after, 2 * before, before * 0.01);
}

TEST(MultiDimHistogramTest, CapturesCorrelationBetterThanIndependence) {
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(30000, 30, 0.0, 1.0), 10);
  exec::Executor ex(db.get());
  HistogramEstimator hist;
  MultiDimHistogramEstimator multi;
  ASSERT_TRUE(hist.Build(*db, {}).ok());
  ASSERT_TRUE(multi.Build(*db, {}).ok());

  workload::WorkloadOptions opts;
  opts.max_joins = 0;
  opts.min_predicates = 2;
  opts.max_predicates = 2;
  opts.equality_prob = 0.5;
  workload::WorkloadGenerator gen(db.get(), opts);
  Rng rng(11);
  auto test = gen.GenerateLabeled(120, &rng);
  double hist_gmean = eval::EvaluateAccuracy(&hist, test).summary.geo_mean;
  double multi_gmean = eval::EvaluateAccuracy(&multi, test).summary.geo_mean;
  EXPECT_LT(multi_gmean, hist_gmean);
}

TEST(SamplingEstimatorTest, AccurateOnSingleTable) {
  auto db = storage::datagen::Generate(storage::datagen::DmvLikeSpec(0.2), 12);
  SamplingEstimator::Options opts;
  opts.rows_per_table = 4000;
  SamplingEstimator est(opts);
  ASSERT_TRUE(est.Build(*db, {}).ok());
  workload::WorkloadOptions wopts;
  wopts.max_joins = 0;
  wopts.min_cardinality = 100;  // avoid the small-count variance regime
  workload::WorkloadGenerator gen(db.get(), wopts);
  Rng rng(13);
  auto test = gen.GenerateLabeled(100, &rng);
  auto report = eval::EvaluateAccuracy(&est, test);
  EXPECT_LT(report.summary.p50, 2.0);
}

TEST(SamplingEstimatorTest, EstimateIsAtLeastOneTuple) {
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(5000, 1000, 0.0, 0.0), 14);
  SamplingEstimator::Options opts;
  opts.rows_per_table = 50;  // tiny sample -> zero hits on narrow ranges
  SamplingEstimator est(opts);
  ASSERT_TRUE(est.Build(*db, {}).ok());
  query::Query q;
  q.tables = {0};
  q.predicates = {{{0, 0}, 1, 1}};
  EXPECT_GE(est.EstimateCardinality(q), 1.0);
}

TEST(TraditionalEstimatorsTest, SizeBytesArePlausible) {
  auto db = storage::datagen::Generate(storage::datagen::TpchLikeSpec(0.05), 15);
  HistogramEstimator hist;
  MultiDimHistogramEstimator multi;
  SamplingEstimator sampling;
  ASSERT_TRUE(hist.Build(*db, {}).ok());
  ASSERT_TRUE(multi.Build(*db, {}).ok());
  ASSERT_TRUE(sampling.Build(*db, {}).ok());
  EXPECT_GT(hist.SizeBytes(), 0u);
  EXPECT_GT(multi.SizeBytes(), hist.SizeBytes());  // grids dwarf 1-D stats
  EXPECT_GT(sampling.SizeBytes(), 0u);
  EXPECT_LT(sampling.SizeBytes(), db->SizeBytes());
}

}  // namespace
}  // namespace ce
}  // namespace lce
