// bench_diff: compare two bench run manifests and gate on watched metrics.
//
//   bench_diff BASELINE.json CURRENT.json [--rel-tol X] [--abs-tol X]
//              [--watch SUBSTR]... [--ignore SUBSTR]... [--markdown PATH]
//
// Prints a markdown report to stdout (and to --markdown PATH when given).
// Exit codes: 0 no regression, 1 watched metric regressed (or vanished),
// 2 usage / IO / parse error. Defaults watch "qerr" with a 25% tolerance, so
// out of the box it gates accuracy drift while ignoring timing noise.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/util/bench_diff.h"
#include "src/util/fs.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s BASELINE.json CURRENT.json [options]\n"
      "\n"
      "Compares two bench run manifests and gates on watched metrics.\n"
      "\n"
      "options:\n"
      "  --rel-tol X       relative regression tolerance (default 0.25)\n"
      "  --abs-tol X       absolute slack: changes smaller than X in\n"
      "                    magnitude never count, regardless of relative\n"
      "                    size (default 0; for tiny-baseline metrics like\n"
      "                    per-event nanoseconds)\n"
      "  --watch SUBSTR    gate metrics whose name contains SUBSTR; first\n"
      "                    use replaces the default watch list (\"qerr\"),\n"
      "                    repeat to watch several substrings\n"
      "  --ignore SUBSTR   exempt matching metrics from gating (repeatable)\n"
      "  --markdown PATH   also write the report to PATH\n"
      "\n"
      "exit codes: 0 no regression, 1 watched metric regressed or vanished,\n"
      "2 usage / IO / parse error (parse errors report file and byte "
      "offset)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using lce::benchdiff::Options;
  Options options;
  std::string baseline, current, markdown_path;
  bool watch_overridden = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--rel-tol") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.rel_tol = std::atof(v);
    } else if (std::strcmp(arg, "--abs-tol") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.abs_tol = std::atof(v);
    } else if (std::strcmp(arg, "--watch") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (!watch_overridden) {
        options.watch.clear();
        watch_overridden = true;
      }
      options.watch.push_back(v);
    } else if (std::strcmp(arg, "--ignore") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.ignore.push_back(v);
    } else if (std::strcmp(arg, "--markdown") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      markdown_path = v;
    } else if (arg[0] == '-') {
      return Usage(argv[0]);
    } else if (baseline.empty()) {
      baseline = arg;
    } else if (current.empty()) {
      current = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (baseline.empty() || current.empty()) return Usage(argv[0]);

  lce::Result<lce::benchdiff::DiffReport> result =
      lce::benchdiff::DiffFiles(baseline, current, options);
  if (!result.ok()) {
    std::fprintf(stderr, "bench_diff: %s\n", result.status().ToString().c_str());
    return 2;
  }
  const lce::benchdiff::DiffReport& report = result.value();
  std::string md = report.ToMarkdown();
  std::fputs(md.c_str(), stdout);
  if (!markdown_path.empty()) {
    lce::Status written = lce::fs::WriteStringToFile(markdown_path, md);
    if (!written.ok()) {
      std::fprintf(stderr, "bench_diff: %s\n", written.ToString().c_str());
      return 2;
    }
  }
  return report.has_regression() ? 1 : 0;
}
