// lce_postmortem: render a flight-recorder postmortem bundle as a markdown
// forensics report.
//
//   lce_postmortem BUNDLE_DIR [--out PATH] [--context N] [--validate]
//
// A bundle directory (written by the flight recorder on a q-error / latency /
// drift / manual trigger, or by the fatal-signal handler) contains:
//
//   meta.json      trigger kind + detail, the offending record, counter
//                  deltas since the previous bundle, trigger counts
//   ring.jsonl     the forensic ring at trigger time, oldest first
//   metrics.json   full metrics-registry dump (absent in signal bundles:
//                  the registry cannot be read async-signal-safely)
//   profile.collapsed  profiler call tree (only when span recording was on)
//
// The report names the offending query (per-predicate selectivity
// attribution, fallbacks), compares its stage breakdown against the ring
// population for the same estimator, lists the neighboring ring entries for
// context (+-N around the offending record, default 8), and tabulates the
// metric deltas around the trigger.
//
// --validate checks bundle structure instead of rendering: meta.json parses
// and names a trigger, every ring.jsonl line parses, and metrics.json (when
// present) parses. Exit codes: 0 ok, 1 validation failed, 2 usage/IO error.

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "src/util/fs.h"
#include "src/util/json_writer.h"

namespace {

namespace stdfs = std::filesystem;
using lce::json::JsonValue;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BUNDLE_DIR [--out PATH] [--context N] [--validate]\n",
               argv0);
  return 2;
}

const JsonValue* Find(const JsonValue& v, const char* key) {
  return v.kind == JsonValue::Kind::kObject ? v.Find(key) : nullptr;
}

std::string GetString(const JsonValue& v, const char* key,
                      const std::string& fallback = "-") {
  const JsonValue* f = Find(v, key);
  return (f != nullptr && f->kind == JsonValue::Kind::kString) ? f->string
                                                               : fallback;
}

bool GetNumber(const JsonValue& v, const char* key, double* out) {
  const JsonValue* f = Find(v, key);
  if (f == nullptr || f->kind != JsonValue::Kind::kNumber) return false;
  *out = f->number;
  return true;
}

double GetNumberOr(const JsonValue& v, const char* key, double fallback) {
  double d = fallback;
  GetNumber(v, key, &d);
  return d;
}

std::string Num(double v) {
  char buf[64];
  if (v == static_cast<int64_t>(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

std::string NumCell(const JsonValue& v, const char* key) {
  const JsonValue* f = Find(v, key);
  if (f == nullptr || f->kind != JsonValue::Kind::kNumber) return "-";
  return Num(f->number);
}

void Append(std::string* out, const char* fmt, ...) {
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

struct Bundle {
  std::string dir;
  JsonValue meta;
  std::vector<JsonValue> ring;  // parsed ring.jsonl records, oldest first
  bool has_metrics = false;
  bool has_profile = false;
};

// Loads and structurally validates the bundle. Returns "" on success, else
// the first problem found (used by both --validate and the renderer).
std::string LoadBundle(const std::string& dir, Bundle* out) {
  out->dir = dir;
  std::string text;
  lce::Status read = lce::fs::ReadFileToString(dir + "/meta.json", &text);
  if (!read.ok()) return "meta.json: " + read.ToString();
  std::string error;
  if (!lce::json::Parse(text, &out->meta, &error)) {
    return "meta.json: " + error;
  }
  if (GetString(out->meta, "trigger", "") == "") {
    return "meta.json: missing \"trigger\"";
  }
  double version = 0;
  if (!GetNumber(out->meta, "version", &version) || version < 1) {
    return "meta.json: missing \"version\"";
  }
  // ring.jsonl is optional (a signal bundle from a process that never
  // recorded has none), but when present every line must parse.
  read = lce::fs::ReadFileToString(dir + "/ring.jsonl", &text);
  if (read.ok()) {
    size_t pos = 0;
    int64_t line_no = 0;
    while (pos < text.size()) {
      size_t end = text.find('\n', pos);
      if (end == std::string::npos) end = text.size();
      std::string_view line(text.data() + pos, end - pos);
      pos = end + 1;
      ++line_no;
      if (line.empty()) continue;
      JsonValue rec;
      if (!lce::json::Parse(line, &rec, &error)) {
        return "ring.jsonl line " + std::to_string(line_no) + ": " + error;
      }
      out->ring.push_back(std::move(rec));
    }
  }
  read = lce::fs::ReadFileToString(dir + "/metrics.json", &text);
  if (read.ok()) {
    JsonValue metrics;
    if (!lce::json::Parse(text, &metrics, &error)) {
      return "metrics.json: " + error;
    }
    out->has_metrics = true;
  }
  std::error_code ec;
  out->has_profile = stdfs::exists(dir + "/profile.collapsed", ec);
  return "";
}

std::string DescribeQuery(const JsonValue& rec) {
  std::string q = "tables [";
  if (const JsonValue* tables = Find(rec, "tables");
      tables != nullptr && tables->kind == JsonValue::Kind::kArray) {
    for (size_t i = 0; i < tables->array.size(); ++i) {
      if (i > 0) q += ", ";
      q += "t" + Num(tables->array[i].number);
    }
  }
  q += "], " + NumCell(rec, "joins") + " join(s), " +
       NumCell(rec, "predicates") + " predicate(s)";
  return q;
}

void RenderOffending(const Bundle& b, const JsonValue& rec, bool from_ring,
                     std::string* out) {
  *out += "## Offending query\n\n";
  if (from_ring) {
    *out +=
        "_The trigger carried no single record (drift/signal/manual); "
        "showing the worst q-error record in the ring._\n\n";
  }
  Append(out, "- **estimator**: `%s` (kind %s, scope `%s`)\n",
         GetString(rec, "estimator").c_str(), GetString(rec, "kind").c_str(),
         GetString(rec, "scope").c_str());
  Append(out, "- **query**: %s — hash `%s`\n", DescribeQuery(rec).c_str(),
         GetString(rec, "query_hash").c_str());
  Append(out, "- **estimate**: %s, **truth**: %s, **q-error**: **%s**\n",
         NumCell(rec, "estimate").c_str(), NumCell(rec, "truth").c_str(),
         NumCell(rec, "qerror").c_str());
  Append(out, "- **latency**: %s µs, **seq**: %s\n",
         NumCell(rec, "latency_us").c_str(), NumCell(rec, "seq").c_str());
  double fallbacks = GetNumberOr(rec, "fallbacks", 0);
  if (fallbacks > 0) {
    Append(out, "- **fallbacks**: %s (first site `%s`)\n", Num(fallbacks).c_str(),
           GetString(rec, "fallback_site").c_str());
  }
  *out += "\n### Per-predicate selectivity attribution\n\n";
  const JsonValue* preds = Find(rec, "preds");
  if (preds == nullptr || preds->kind != JsonValue::Kind::kArray ||
      preds->array.empty()) {
    *out += "No predicates recorded.\n\n";
  } else {
    *out +=
        "| # | column | range | attributed selectivity |\n|---|---|---|---|\n";
    for (size_t i = 0; i < preds->array.size(); ++i) {
      const JsonValue& p = preds->array[i];
      std::string sel = "n/a (joint model or context record)";
      double s = -1;
      if (GetNumber(p, "sel", &s) && s >= 0) sel = Num(s);
      Append(out, "| %d | t%s.c%s | [%s, %s] | %s |\n",
             static_cast<int>(i + 1), NumCell(p, "t").c_str(),
             NumCell(p, "c").c_str(), NumCell(p, "lo").c_str(),
             NumCell(p, "hi").c_str(), sel.c_str());
    }
    double total = GetNumberOr(rec, "predicates", 0);
    if (total > static_cast<double>(preds->array.size())) {
      Append(out, "\n_%d of %s predicates recorded (fixed-size record)._\n",
             static_cast<int>(preds->array.size()), Num(total).c_str());
    }
    *out += "\n";
  }
}

// Stage breakdown of the offending record vs. the population of ring records
// for the same estimator.
void RenderStages(const Bundle& b, const JsonValue& rec, std::string* out) {
  *out += "### Stage breakdown vs population\n\n";
  const JsonValue* stages = Find(rec, "stages");
  if (stages == nullptr || stages->kind != JsonValue::Kind::kArray ||
      stages->array.empty()) {
    *out +=
        "No stage samples on this record (context records from the accuracy "
        "scan carry none; only diagnostics-path records do).\n\n";
    return;
  }
  const std::string estimator = GetString(rec, "estimator", "");
  // stage name -> per-record micros across the ring (same estimator).
  std::map<std::string, std::vector<double>> population;
  for (const JsonValue& r : b.ring) {
    if (GetString(r, "estimator", "") != estimator) continue;
    const JsonValue* rs = Find(r, "stages");
    if (rs == nullptr || rs->kind != JsonValue::Kind::kArray) continue;
    for (const JsonValue& s : rs->array) {
      double us = 0;
      if (GetNumber(s, "us", &us)) {
        population[GetString(s, "s", "?")].push_back(us);
      }
    }
  }
  *out +=
      "| stage | this query µs | population mean µs | population p95 µs |"
      " samples |\n|---|---|---|---|---|\n";
  for (const JsonValue& s : stages->array) {
    const std::string name = GetString(s, "s", "?");
    std::string mean = "n/a", p95 = "n/a", n = "0";
    auto it = population.find(name);
    if (it != population.end() && !it->second.empty()) {
      double sum = 0;
      for (double v : it->second) sum += v;
      mean = Num(sum / static_cast<double>(it->second.size()));
      p95 = Num(Quantile(it->second, 0.95));
      n = Num(static_cast<double>(it->second.size()));
    }
    Append(out, "| %s | %s | %s | %s | %s |\n", name.c_str(),
           NumCell(s, "us").c_str(), mean.c_str(), p95.c_str(), n.c_str());
  }
  *out += "\n";
}

void RenderNeighbors(const Bundle& b, double offending_seq, int context,
                     std::string* out) {
  *out += "## Neighboring ring entries\n\n";
  if (b.ring.empty()) {
    *out += "Ring empty at trigger time.\n\n";
    return;
  }
  // The ring is seq-ordered; find the offending index (or the end).
  size_t center = b.ring.size() - 1;
  for (size_t i = 0; i < b.ring.size(); ++i) {
    if (GetNumberOr(b.ring[i], "seq", -1) == offending_seq) {
      center = i;
      break;
    }
  }
  size_t lo = center > static_cast<size_t>(context)
                  ? center - static_cast<size_t>(context)
                  : 0;
  size_t hi = std::min(b.ring.size(), center + static_cast<size_t>(context) + 1);
  *out +=
      "| seq | kind | estimator | estimate | truth | q-error | latency µs |"
      " query |\n|---|---|---|---|---|---|---|---|\n";
  for (size_t i = lo; i < hi; ++i) {
    const JsonValue& r = b.ring[i];
    bool is_offender = GetNumberOr(r, "seq", -1) == offending_seq;
    Append(out, "| %s%s%s | %s | `%s` | %s | %s | %s | %s | %s |\n",
           is_offender ? "**" : "", NumCell(r, "seq").c_str(),
           is_offender ? "**" : "", GetString(r, "kind").c_str(),
           GetString(r, "estimator").c_str(), NumCell(r, "estimate").c_str(),
           NumCell(r, "truth").c_str(), NumCell(r, "qerror").c_str(),
           NumCell(r, "latency_us").c_str(), DescribeQuery(r).c_str());
  }
  *out += "\n";
}

void RenderRingSummary(const Bundle& b, std::string* out) {
  *out += "## Ring population\n\n";
  if (b.ring.empty()) {
    *out += "Ring empty at trigger time.\n\n";
    return;
  }
  struct Pop {
    int64_t records = 0;
    std::vector<double> qerrors;
    std::vector<double> latencies;
  };
  std::map<std::string, Pop> by_estimator;
  for (const JsonValue& r : b.ring) {
    Pop& p = by_estimator[GetString(r, "estimator", "?")];
    ++p.records;
    double d = 0;
    if (GetNumber(r, "qerror", &d) && d >= 0) p.qerrors.push_back(d);
    if (GetNumber(r, "latency_us", &d) && d >= 0) p.latencies.push_back(d);
  }
  *out +=
      "| estimator | records | qerr p50 | qerr p95 | qerr max |"
      " latency p95 µs |\n|---|---|---|---|---|---|\n";
  for (auto& [name, p] : by_estimator) {
    std::string q50 = "n/a", q95 = "n/a", qmax = "n/a", l95 = "n/a";
    if (!p.qerrors.empty()) {
      q50 = Num(Quantile(p.qerrors, 0.5));
      q95 = Num(Quantile(p.qerrors, 0.95));
      qmax = Num(*std::max_element(p.qerrors.begin(), p.qerrors.end()));
    }
    if (!p.latencies.empty()) l95 = Num(Quantile(p.latencies, 0.95));
    Append(out, "| `%s` | %lld | %s | %s | %s | %s |\n", name.c_str(),
           static_cast<long long>(p.records), q50.c_str(), q95.c_str(),
           qmax.c_str(), l95.c_str());
  }
  *out += "\n";
}

void RenderDeltas(const Bundle& b, std::string* out) {
  *out += "## Metric deltas around the trigger\n\n";
  const JsonValue* deltas = Find(b.meta, "counter_deltas");
  if (deltas == nullptr || deltas->kind != JsonValue::Kind::kObject ||
      deltas->object.empty()) {
    *out +=
        "No counter deltas (signal bundles cannot dump the registry "
        "async-signal-safely).\n\n";
    return;
  }
  std::vector<std::pair<std::string, double>> rows;
  for (const auto& [name, v] : deltas->object) {
    if (v.kind == JsonValue::Kind::kNumber) rows.emplace_back(name, v.number);
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  constexpr size_t kTop = 30;
  bool truncated = rows.size() > kTop;
  if (truncated) rows.resize(kTop);
  *out += "Counter movement since the previous bundle (or process start):\n\n";
  *out += "| counter | delta |\n|---|---|\n";
  for (const auto& [name, v] : rows) {
    Append(out, "| `%s` | %s |\n", name.c_str(), Num(v).c_str());
  }
  if (truncated) {
    Append(out, "\n_Top %d shown; see meta.json for the rest._\n",
           static_cast<int>(kTop));
  }
  *out += "\n";
}

std::string Render(const Bundle& b, int context) {
  std::string md = "# Postmortem bundle report\n\n";
  const std::string trigger = GetString(b.meta, "trigger");
  Append(&md, "- **bundle**: `%s`\n", b.dir.c_str());
  Append(&md, "- **trigger**: **%s** — %s\n", trigger.c_str(),
         GetString(b.meta, "detail", "-").c_str());
  double signo = 0;
  if (GetNumber(b.meta, "signal", &signo)) {
    Append(&md, "- **signal**: %d\n", static_cast<int>(signo));
  }
  std::string ts = GetString(b.meta, "timestamp_utc", "");
  if (ts.empty()) {
    double unix_time = 0;
    if (GetNumber(b.meta, "unix_time", &unix_time)) {
      ts = "unix " + Num(unix_time);
    } else {
      ts = "-";
    }
  }
  Append(&md, "- **when**: %s (commit %s)\n", ts.c_str(),
         GetString(b.meta, "git_commit").c_str());
  Append(&md, "- **ring**: %d record(s) captured, %s appended in total\n",
         static_cast<int>(b.ring.size()),
         NumCell(b.meta, "records_total").c_str());
  Append(&md, "- **files**: meta.json, %s record ring%s%s\n",
         b.ring.empty() ? "no" : "full",
         b.has_metrics ? ", metrics.json" : ", no metrics dump (signal path)",
         b.has_profile ? ", profile.collapsed" : "");
  if (const JsonValue* counts = Find(b.meta, "trigger_counts");
      counts != nullptr && counts->kind == JsonValue::Kind::kObject) {
    std::string parts;
    for (const auto& [kind, v] : counts->object) {
      if (v.kind == JsonValue::Kind::kNumber && v.number > 0) {
        if (!parts.empty()) parts += ", ";
        parts += kind + "=" + Num(v.number);
      }
    }
    if (!parts.empty()) Append(&md, "- **trigger counts**: %s\n", parts.c_str());
  }
  md += "\n";

  // The offending record: from meta.json when the trigger named one, else
  // the worst q-error record in the ring.
  const JsonValue* offending = Find(b.meta, "offending");
  bool from_ring = false;
  const JsonValue* shown = nullptr;
  if (offending != nullptr && offending->kind == JsonValue::Kind::kObject) {
    shown = offending;
  } else {
    double worst = -1;
    for (const JsonValue& r : b.ring) {
      double qe = GetNumberOr(r, "qerror", -1);
      if (qe > worst) {
        worst = qe;
        shown = &r;
        from_ring = true;
      }
    }
  }
  if (shown != nullptr) {
    RenderOffending(b, *shown, from_ring, &md);
    RenderStages(b, *shown, &md);
    RenderNeighbors(b, GetNumberOr(*shown, "seq", -1), context, &md);
  } else {
    md += "## Offending query\n\nRing empty; nothing to attribute.\n\n";
  }
  RenderRingSummary(b, &md);
  RenderDeltas(b, &md);
  return md;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bundle_dir;
  std::string out_path;
  bool validate = false;
  int context = 8;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--out") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      out_path = v;
    } else if (std::strcmp(arg, "--context") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      context = std::atoi(v);
      if (context < 0) return Usage(argv[0]);
    } else if (std::strcmp(arg, "--validate") == 0) {
      validate = true;
    } else if (arg[0] == '-') {
      return Usage(argv[0]);
    } else if (bundle_dir.empty()) {
      bundle_dir = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (bundle_dir.empty()) return Usage(argv[0]);

  Bundle bundle;
  std::string problem = LoadBundle(bundle_dir, &bundle);
  if (validate) {
    if (!problem.empty()) {
      std::fprintf(stderr, "lce_postmortem: INVALID %s: %s\n",
                   bundle_dir.c_str(), problem.c_str());
      return 1;
    }
    std::printf("lce_postmortem: OK %s (trigger %s, %d ring record(s)%s)\n",
                bundle_dir.c_str(),
                GetString(bundle.meta, "trigger").c_str(),
                static_cast<int>(bundle.ring.size()),
                bundle.has_metrics ? ", metrics dump" : "");
    return 0;
  }
  if (!problem.empty()) {
    std::fprintf(stderr, "lce_postmortem: %s: %s\n", bundle_dir.c_str(),
                 problem.c_str());
    return 2;
  }

  std::string md = Render(bundle, context);
  std::fputs(md.c_str(), stdout);
  if (!out_path.empty()) {
    lce::Status written = lce::fs::WriteStringToFile(out_path, md);
    if (!written.ok()) {
      std::fprintf(stderr, "lce_postmortem: %s\n", written.ToString().c_str());
      return 2;
    }
  }
  return 0;
}
