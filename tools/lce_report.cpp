// lce_report: aggregate bench run manifests and training logs into one
// markdown dashboard.
//
//   lce_report [DIR|MANIFEST.json]... [--train-log PATH]...
//              [--profile PATH]... [--out PATH]
//
// Positional arguments are run-manifest files or directories to scan for
// BENCH_manifest_*.json (non-recursive). Training logs are picked up from
// --train-log flags plus any existing `train_log` paths the manifests
// recorded; collapsed-stack profiles likewise from --profile flags plus the
// manifests' `profile_path`. The report joins the manifests' model cards,
// memory accounting, and drift alerts with per-model training summaries into
// the accuracy-vs-train-cost-vs-footprint view DESIGN.md §9 describes, adds
// the per-query stage decomposition (encode/featurize -> forward/traverse ->
// postprocess) recorded by the estimators' stage timers, the serving
// throughput arms published by bench_serve_throughput (batch on/off QPS,
// latency percentiles, speedup), and renders the top hot paths of any
// profiles.
//
// Prints markdown to stdout (and to --out PATH when given). Exit codes:
// 0 report rendered, 2 usage / IO / parse error (a missing or malformed
// input is an error; an empty scan directory is not).

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/util/fs.h"
#include "src/util/json_writer.h"

namespace {

namespace fs = std::filesystem;
using lce::json::JsonValue;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [DIR|MANIFEST.json]... [--train-log PATH]... "
               "[--profile PATH]... [--out PATH]\n",
               argv0);
  return 2;
}

struct Manifest {
  std::string path;
  JsonValue root;
};

// --- JsonValue accessors -------------------------------------------------

const JsonValue* Find(const JsonValue& v, const char* key) {
  return v.kind == JsonValue::Kind::kObject ? v.Find(key) : nullptr;
}

std::string GetString(const JsonValue& v, const char* key,
                      const std::string& fallback = "-") {
  const JsonValue* f = Find(v, key);
  return (f != nullptr && f->kind == JsonValue::Kind::kString) ? f->string
                                                               : fallback;
}

bool GetNumber(const JsonValue& v, const char* key, double* out) {
  const JsonValue* f = Find(v, key);
  if (f == nullptr || f->kind != JsonValue::Kind::kNumber) return false;
  *out = f->number;
  return true;
}

// --- cell formatting -----------------------------------------------------

std::string Num(double v) {
  char buf[64];
  if (v == static_cast<int64_t>(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

std::string NumCell(const JsonValue& v, const char* key) {
  double d = 0;
  return GetNumber(v, key, &d) ? Num(d) : "-";
}

std::string Bytes(double v) {
  char buf[64];
  if (v >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", v / (1024.0 * 1024.0));
  } else if (v >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", v / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(v));
  }
  return buf;
}

std::string BytesCell(const JsonValue& v, const char* key) {
  double d = 0;
  return GetNumber(v, key, &d) ? Bytes(d) : "-";
}

// --- input collection ----------------------------------------------------

bool LoadManifest(const std::string& path, std::vector<Manifest>* out) {
  std::string text;
  lce::Status read = lce::fs::ReadFileToString(path, &text);
  if (!read.ok()) {
    std::fprintf(stderr, "lce_report: %s\n", read.ToString().c_str());
    return false;
  }
  Manifest m;
  m.path = path;
  std::string error;
  if (!lce::json::Parse(text, &m.root, &error)) {
    std::fprintf(stderr, "lce_report: cannot parse %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  out->push_back(std::move(m));
  return true;
}

bool CollectManifests(const std::string& arg, std::vector<Manifest>* out) {
  std::error_code ec;
  if (fs::is_directory(arg, ec)) {
    std::vector<std::string> paths;
    for (const fs::directory_entry& e : fs::directory_iterator(arg, ec)) {
      const std::string name = e.path().filename().string();
      if (name.rfind("BENCH_manifest_", 0) == 0 &&
          name.size() > 5 && name.substr(name.size() - 5) == ".json") {
        paths.push_back(e.path().string());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string& p : paths) {
      if (!LoadManifest(p, out)) return false;
    }
    return true;
  }
  return LoadManifest(arg, out);
}

// One model's training-log rollup: epochs/rounds/phases seen, loss
// trajectory endpoints, and total training wall time.
struct TrainSummary {
  std::string family;
  int64_t events = 0;
  double first_loss = -1;
  double last_loss = -1;
  double wall_seconds = 0;
  double rows_per_sec_sum = 0;
  int64_t rows_per_sec_n = 0;
};

bool LoadTrainLog(const std::string& path,
                  std::map<std::string, TrainSummary>* by_model) {
  std::string text;
  lce::Status read = lce::fs::ReadFileToString(path, &text);
  if (!read.ok()) {
    // A training log that has vanished (cleaned bench/out, partial CI
    // artifact) degrades the training section to n/a rows; it should not
    // kill the whole report.
    std::fprintf(stderr, "lce_report: warning: skipping train log: %s\n",
                 read.ToString().c_str());
    return true;
  }
  size_t pos = 0;
  int64_t line_no = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string_view line(text.data() + pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;
    JsonValue ev;
    std::string error;
    if (!lce::json::Parse(line, &ev, &error)) {
      std::fprintf(stderr, "lce_report: cannot parse %s line %lld: %s\n",
                   path.c_str(), static_cast<long long>(line_no),
                   error.c_str());
      return false;
    }
    TrainSummary& s = (*by_model)[GetString(ev, "model", "?")];
    if (s.family == "-" || s.family.empty()) {
      s.family = GetString(ev, "family");
    }
    ++s.events;
    double d = 0;
    if (GetNumber(ev, "loss", &d)) {
      if (s.first_loss < 0) s.first_loss = d;
      s.last_loss = d;
    }
    if (GetNumber(ev, "wall_s", &d)) s.wall_seconds += d;
    if (GetNumber(ev, "rows_per_sec", &d)) {
      s.rows_per_sec_sum += d;
      ++s.rows_per_sec_n;
    }
  }
  return true;
}

// --- report sections -----------------------------------------------------

void Append(std::string* out, const char* fmt, ...) {
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

void RenderRuns(const std::vector<Manifest>& manifests, std::string* out) {
  *out += "## Runs\n\n";
  *out +=
      "| bench | commit | timestamp (UTC) | wall s | threads | peak RSS |\n"
      "|---|---|---|---|---|---|\n";
  for (const Manifest& m : manifests) {
    std::string threads = "-";
    if (const JsonValue* t = Find(m.root, "threads")) {
      threads = NumCell(*t, "configured");
    }
    std::string rss = "-";
    if (const JsonValue* mem = Find(m.root, "memory")) {
      rss = BytesCell(*mem, "peak_rss_bytes");
    }
    Append(out, "| %s | %s | %s | %s | %s | %s |\n",
           GetString(m.root, "bench").c_str(),
           GetString(m.root, "git_commit").c_str(),
           GetString(m.root, "timestamp_utc").c_str(),
           NumCell(m.root, "wall_seconds").c_str(), threads.c_str(),
           rss.c_str());
  }
  *out += "\n";
}

void RenderModelCards(const std::vector<Manifest>& manifests,
                      std::string* out) {
  *out += "## Model cards — accuracy vs train cost vs footprint\n\n";
  bool any = false;
  std::string table =
      "| bench | model | family | dataset | params | footprint | train rows |"
      " epochs | final loss | build s | qerr p50 | qerr p95 |\n"
      "|---|---|---|---|---|---|---|---|---|---|---|---|\n";
  for (const Manifest& m : manifests) {
    const JsonValue* cards = Find(m.root, "model_cards");
    const std::string bench = GetString(m.root, "bench");
    if (cards == nullptr || cards->kind != JsonValue::Kind::kArray ||
        cards->array.empty()) {
      // Partial input (old manifest, run without estimators): keep the run
      // visible as an n/a row rather than dropping it from the section.
      any = true;
      Append(&table,
             "| %s | n/a | n/a | n/a | - | - | - | - | - | - | - | - |\n",
             bench.c_str());
      continue;
    }
    for (const JsonValue& card : cards->array) {
      any = true;
      std::string p50 = "-", p95 = "-";
      if (const JsonValue* extra = Find(card, "extra")) {
        p50 = NumCell(*extra, "qerr_p50");
        p95 = NumCell(*extra, "qerr_p95");
      }
      Append(&table,
             "| %s | %s | %s | %s | %s | %s | %s | %s | %s | %s | %s | %s |\n",
             bench.c_str(), GetString(card, "model").c_str(),
             GetString(card, "family").c_str(),
             GetString(card, "dataset").c_str(),
             NumCell(card, "parameter_count").c_str(),
             BytesCell(card, "footprint_bytes").c_str(),
             NumCell(card, "train_examples").c_str(),
             NumCell(card, "epochs").c_str(),
             NumCell(card, "final_train_loss").c_str(),
             NumCell(card, "build_seconds").c_str(), p50.c_str(),
             p95.c_str());
    }
  }
  *out += any ? table : "No model cards recorded.\n";
  *out += "\n";
}

void RenderMemory(const std::vector<Manifest>& manifests, std::string* out) {
  *out += "## Memory\n\n";
  bool any = false;
  std::string table =
      "| bench | subsystem | bytes |\n|---|---|---|\n";
  for (const Manifest& m : manifests) {
    const JsonValue* mem = Find(m.root, "memory");
    if (mem == nullptr) continue;
    const JsonValue* subs = Find(*mem, "subsystems");
    if (subs == nullptr || subs->kind != JsonValue::Kind::kObject) continue;
    const std::string bench = GetString(m.root, "bench");
    for (const auto& [name, bytes] : subs->object) {
      if (bytes.kind != JsonValue::Kind::kNumber) continue;
      any = true;
      Append(&table, "| %s | %s | %s |\n", bench.c_str(), name.c_str(),
             Bytes(bytes.number).c_str());
    }
  }
  *out += any ? table : "No subsystem accounting recorded.\n";
  *out += "\n";
}

void RenderDrift(const std::vector<Manifest>& manifests, std::string* out) {
  *out += "## Drift alerts\n\n";
  bool any = false;
  std::string table =
      "| bench | monitor | observation | window p95 | threshold |\n"
      "|---|---|---|---|---|\n";
  for (const Manifest& m : manifests) {
    const JsonValue* alerts = Find(m.root, "drift_alerts");
    const std::string bench = GetString(m.root, "bench");
    if (alerts == nullptr || alerts->kind != JsonValue::Kind::kArray ||
        alerts->array.empty()) {
      // Empty or missing history still names the run: "none fired" is a
      // finding, not an absence of data.
      any = true;
      Append(&table, "| %s | n/a (none fired) | - | - | - |\n", bench.c_str());
      continue;
    }
    for (const JsonValue& a : alerts->array) {
      any = true;
      Append(&table, "| %s | %s | %s | %s | %s |\n", bench.c_str(),
             GetString(a, "monitor").c_str(),
             NumCell(a, "observation").c_str(), NumCell(a, "p95").c_str(),
             NumCell(a, "threshold").c_str());
    }
  }
  *out += any ? table : "No drift alerts fired.\n";
  *out += "\n";
}

// Flight-recorder activity: per-run record counts, trigger counters, and the
// postmortem bundles written (with whether each is still on disk, so a CI
// report points straight at the artifact to download).
void RenderPostmortems(const std::vector<Manifest>& manifests,
                       std::string* out) {
  *out += "## Postmortem bundles\n\n";
  bool any_bundle = false;
  std::string summary =
      "| bench | recorder | records | triggers |\n|---|---|---|---|\n";
  std::string bundles =
      "| bench | trigger | offending seq | bundle |\n|---|---|---|---|\n";
  for (const Manifest& m : manifests) {
    const std::string bench = GetString(m.root, "bench");
    const JsonValue* fr = Find(m.root, "flight_recorder");
    if (fr == nullptr || fr->kind != JsonValue::Kind::kObject) {
      Append(&summary, "| %s | n/a (pre-recorder manifest) | - | - |\n",
             bench.c_str());
      continue;
    }
    const JsonValue* enabled = Find(*fr, "enabled");
    bool on = enabled != nullptr && enabled->kind == JsonValue::Kind::kBool &&
              enabled->boolean;
    std::string triggers = "-";
    if (const JsonValue* counts = Find(*fr, "triggers");
        counts != nullptr && counts->kind == JsonValue::Kind::kObject) {
      std::string parts;
      for (const auto& [kind, v] : counts->object) {
        if (v.kind == JsonValue::Kind::kNumber && v.number > 0) {
          if (!parts.empty()) parts += ", ";
          parts += kind + "=" + Num(v.number);
        }
      }
      if (!parts.empty()) triggers = parts;
    }
    Append(&summary, "| %s | %s | %s | %s |\n", bench.c_str(),
           on ? "on" : "off", NumCell(*fr, "records").c_str(),
           triggers.c_str());
    if (const JsonValue* list = Find(*fr, "bundles");
        list != nullptr && list->kind == JsonValue::Kind::kArray) {
      for (const JsonValue& bundle : list->array) {
        any_bundle = true;
        const std::string path = GetString(bundle, "path", "?");
        std::error_code ec;
        bool present = fs::exists(path, ec);
        Append(&bundles, "| %s | %s | %s | `%s`%s |\n", bench.c_str(),
               GetString(bundle, "trigger").c_str(),
               NumCell(bundle, "seq").c_str(), path.c_str(),
               present ? "" : " (missing on disk)");
      }
    }
  }
  *out += summary;
  *out += "\n";
  if (any_bundle) {
    *out += bundles;
    *out += "\nRender any bundle with `lce_postmortem <bundle-dir>`.\n";
  } else {
    *out += "No postmortem bundles written.\n";
  }
  *out += "\n";
}

// Per-query stage decomposition: the estimators' stage timers feed
// ce.<model>.stage.<stage>.micros histograms (per-query microseconds) and a
// ce.<model>.latency.micros whole-call histogram. Coverage is the stage
// means summed against the latency mean — near 100% when the stages tile
// the estimate path.
void RenderStages(const std::vector<Manifest>& manifests, std::string* out) {
  *out += "## Stage latency decomposition\n\n";
  struct StageRow {
    std::string stage;
    double mean = 0, p95 = 0, count = 0;
  };
  struct ModelStages {
    std::vector<StageRow> stages;
    double latency_mean = -1, latency_p95 = 0;
  };
  bool any = false;
  std::string table =
      "| bench | model | stage | mean µs | p95 µs | queries | share |\n"
      "|---|---|---|---|---|---|---|\n";
  for (const Manifest& m : manifests) {
    const JsonValue* metrics = Find(m.root, "metrics");
    const JsonValue* hists =
        metrics != nullptr ? Find(*metrics, "histograms") : nullptr;
    if (hists == nullptr || hists->kind != JsonValue::Kind::kObject) continue;
    std::map<std::string, ModelStages> by_model;
    for (const auto& [name, h] : hists->object) {
      if (name.rfind("ce.", 0) != 0) continue;
      size_t stage_at = name.find(".stage.");
      size_t latency_at = name.find(".latency.micros");
      if (stage_at != std::string::npos &&
          name.size() > stage_at + 7 &&
          name.compare(name.size() - 7, 7, ".micros") == 0) {
        StageRow row;
        row.stage = name.substr(stage_at + 7,
                                name.size() - stage_at - 7 - 7);
        GetNumber(h, "mean", &row.mean);
        GetNumber(h, "p95", &row.p95);
        GetNumber(h, "count", &row.count);
        by_model[name.substr(3, stage_at - 3)].stages.push_back(row);
      } else if (latency_at != std::string::npos) {
        ModelStages& ms = by_model[name.substr(3, latency_at - 3)];
        GetNumber(h, "mean", &ms.latency_mean);
        GetNumber(h, "p95", &ms.latency_p95);
      }
    }
    const std::string bench = GetString(m.root, "bench");
    // encode -> forward/traverse -> postprocess reads better than
    // alphabetical.
    auto stage_rank = [](const std::string& s) {
      if (s == "encode") return 0;
      if (s == "forward" || s == "traverse") return 1;
      if (s == "postprocess") return 2;
      return 3;
    };
    for (auto& [model, ms] : by_model) {
      if (ms.stages.empty()) continue;
      any = true;
      std::sort(ms.stages.begin(), ms.stages.end(),
                [&](const StageRow& a, const StageRow& b) {
                  return stage_rank(a.stage) < stage_rank(b.stage);
                });
      double stage_sum = 0;
      for (const StageRow& s : ms.stages) {
        stage_sum += s.mean;
        std::string share = "-";
        if (ms.latency_mean > 0) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.0f%%",
                        100.0 * s.mean / ms.latency_mean);
          share = buf;
        }
        Append(&table, "| %s | %s | %s | %s | %s | %s | %s |\n",
               bench.c_str(), model.c_str(), s.stage.c_str(),
               Num(s.mean).c_str(), Num(s.p95).c_str(), Num(s.count).c_str(),
               share.c_str());
      }
      if (ms.latency_mean > 0) {
        char cov[32];
        std::snprintf(cov, sizeof(cov), "%.0f%%",
                      100.0 * stage_sum / ms.latency_mean);
        Append(&table,
               "| %s | %s | **total vs latency** | %s | %s | | **%s** |\n",
               bench.c_str(), model.c_str(), Num(stage_sum).c_str(),
               Num(ms.latency_mean).c_str(), cov);
      }
    }
  }
  *out += any ? table : "No stage histograms recorded (set LCE_METRICS=1).\n";
  *out += "\n";
}

// Full percentile spread for every histogram in the manifests, including the
// p99.9 tail and the exact min/max.
void RenderHistograms(const std::vector<Manifest>& manifests,
                      std::string* out) {
  *out += "## Histograms\n\n";
  bool any = false;
  std::string table =
      "| bench | histogram | count | mean | p50 | p95 | p99 | p99.9 | min |"
      " max |\n|---|---|---|---|---|---|---|---|---|---|\n";
  for (const Manifest& m : manifests) {
    const JsonValue* metrics = Find(m.root, "metrics");
    const JsonValue* hists =
        metrics != nullptr ? Find(*metrics, "histograms") : nullptr;
    if (hists == nullptr || hists->kind != JsonValue::Kind::kObject) continue;
    const std::string bench = GetString(m.root, "bench");
    for (const auto& [name, h] : hists->object) {
      any = true;
      Append(&table,
             "| %s | `%s` | %s | %s | %s | %s | %s | %s | %s | %s |\n",
             bench.c_str(), name.c_str(), NumCell(h, "count").c_str(),
             NumCell(h, "mean").c_str(), NumCell(h, "p50").c_str(),
             NumCell(h, "p95").c_str(), NumCell(h, "p99").c_str(),
             NumCell(h, "p999").c_str(), NumCell(h, "min").c_str(),
             NumCell(h, "max").c_str());
    }
  }
  *out += any ? table : "No histograms recorded (set LCE_METRICS=1).\n";
  *out += "\n";
}

// Top hot paths from collapsed-stack profile files (LCE_PROFILE output;
// the same format flamegraph.pl and speedscope consume). Each line is
// "root;child;leaf self_micros"; the table ranks leaves by self time.
bool RenderProfiles(const std::vector<std::string>& paths, std::string* out,
                    int top_n = 20) {
  *out += "## Profile hot paths\n\n";
  if (paths.empty()) {
    *out += "No profiles given (run with LCE_PROFILE=1, pass --profile).\n\n";
    return true;
  }
  struct HotPath {
    std::string path;
    double self_micros = 0;
  };
  std::vector<HotPath> rows;
  double total = 0;
  for (const std::string& path : paths) {
    std::string text;
    lce::Status read = lce::fs::ReadFileToString(path, &text);
    if (!read.ok()) {
      std::fprintf(stderr, "lce_report: %s\n", read.ToString().c_str());
      return false;
    }
    size_t pos = 0;
    while (pos < text.size()) {
      size_t end = text.find('\n', pos);
      if (end == std::string::npos) end = text.size();
      std::string line = text.substr(pos, end - pos);
      pos = end + 1;
      size_t space = line.rfind(' ');
      if (space == std::string::npos || space == 0) continue;
      HotPath hp;
      hp.path = line.substr(0, space);
      hp.self_micros = std::atof(line.c_str() + space + 1);
      total += hp.self_micros;
      rows.push_back(std::move(hp));
    }
  }
  std::sort(rows.begin(), rows.end(), [](const HotPath& a, const HotPath& b) {
    return a.self_micros > b.self_micros;
  });
  if (rows.size() > static_cast<size_t>(top_n)) rows.resize(top_n);
  Append(out, "Top %d paths by self time (of %s µs total):\n\n",
         static_cast<int>(rows.size()), Num(total).c_str());
  *out += "| self µs | % | path |\n|---|---|---|\n";
  for (const HotPath& r : rows) {
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%.1f%%",
                  total > 0 ? 100.0 * r.self_micros / total : 0.0);
    Append(out, "| %s | %s | `%s` |\n", Num(r.self_micros).c_str(), pct,
           r.path.c_str());
  }
  *out += "\n";
  return true;
}

// Serving throughput: bench_serve_throughput publishes per-(model, client
// count, arm) gauges named serve.<model>.c<N>.<off|on>.<metric> plus a
// serve.<model>.c<N>.batch_speedup_x summary. One row per arm, speedup on
// the batched row, so the batch-on vs batch-off comparison reads top-down.
void RenderServing(const std::vector<Manifest>& manifests, std::string* out) {
  *out += "## Serving throughput\n\n";
  struct Arm {
    double qps = -1, p50 = -1, p95 = -1, p99 = -1;
    double mean_batch = -1, wait = -1, speedup = -1;
  };
  bool any = false;
  std::string table =
      "| bench | model | clients | batching | qps | p50 µs | p95 µs |"
      " p99 µs | mean batch | wait µs | speedup |\n"
      "|---|---|---|---|---|---|---|---|---|---|---|\n";
  for (const Manifest& m : manifests) {
    const JsonValue* metrics = Find(m.root, "metrics");
    const JsonValue* gauges =
        metrics != nullptr ? Find(*metrics, "gauges") : nullptr;
    if (gauges == nullptr || gauges->kind != JsonValue::Kind::kObject) {
      continue;
    }
    // key = (model, clients, arm) in gauge-name order, which already sorts
    // by model then client count then off/on.
    std::map<std::tuple<std::string, int, std::string>, Arm> arms;
    std::map<std::pair<std::string, int>, double> speedups;
    for (const auto& [name, v] : gauges->object) {
      if (name.rfind("serve.", 0) != 0 ||
          v.kind != JsonValue::Kind::kNumber) {
        continue;
      }
      // serve.<model>.c<N>.<rest>
      size_t model_end = name.find('.', 6);
      if (model_end == std::string::npos || name[model_end + 1] != 'c') {
        continue;
      }
      size_t clients_end = name.find('.', model_end + 1);
      if (clients_end == std::string::npos) continue;
      const std::string model = name.substr(6, model_end - 6);
      const int clients =
          std::atoi(name.c_str() + model_end + 2);
      const std::string rest = name.substr(clients_end + 1);
      if (rest == "batch_speedup_x") {
        speedups[{model, clients}] = v.number;
        continue;
      }
      size_t arm_end = rest.find('.');
      if (arm_end == std::string::npos) continue;
      const std::string arm = rest.substr(0, arm_end);
      if (arm != "off" && arm != "on") continue;
      Arm& a = arms[{model, clients, arm}];
      const std::string metric = rest.substr(arm_end + 1);
      if (metric == "throughput_rps") a.qps = v.number;
      else if (metric == "lat_p50_micros") a.p50 = v.number;
      else if (metric == "lat_p95_micros") a.p95 = v.number;
      else if (metric == "lat_p99_micros") a.p99 = v.number;
      else if (metric == "mean_batch") a.mean_batch = v.number;
      else if (metric == "queue_wait_mean_micros") a.wait = v.number;
    }
    const std::string bench = GetString(m.root, "bench");
    auto cell = [](double v) { return v >= 0 ? Num(v) : std::string("-"); };
    for (const auto& [key, a] : arms) {
      any = true;
      const auto& [model, clients, arm] = key;
      std::string speedup = "-";
      if (arm == "on") {
        auto it = speedups.find({model, clients});
        if (it != speedups.end()) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "**%.2fx**", it->second);
          speedup = buf;
        }
      }
      Append(&table, "| %s | %s | %d | %s | %s | %s | %s | %s | %s | %s |"
                     " %s |\n",
             bench.c_str(), model.c_str(), clients, arm.c_str(),
             cell(a.qps).c_str(), cell(a.p50).c_str(), cell(a.p95).c_str(),
             cell(a.p99).c_str(), cell(a.mean_batch).c_str(),
             cell(a.wait).c_str(), speedup.c_str());
    }
  }
  *out += any ? table
              : "No serving gauges recorded (run bench_serve_throughput).\n";
  *out += "\n";
}

void RenderTraining(const std::map<std::string, TrainSummary>& by_model,
                    std::string* out) {
  *out += "## Training log\n\n";
  if (by_model.empty()) {
    *out += "No training-log events found.\n\n";
    return;
  }
  *out +=
      "| model | family | events | first loss | last loss | train wall s |"
      " mean rows/s |\n|---|---|---|---|---|---|---|\n";
  for (const auto& [model, s] : by_model) {
    std::string first = s.first_loss >= 0 ? Num(s.first_loss) : "-";
    std::string last = s.last_loss >= 0 ? Num(s.last_loss) : "-";
    std::string rps = s.rows_per_sec_n > 0
                          ? Num(s.rows_per_sec_sum /
                                static_cast<double>(s.rows_per_sec_n))
                          : "-";
    Append(out, "| %s | %s | %lld | %s | %s | %s | %s |\n", model.c_str(),
           s.family.c_str(), static_cast<long long>(s.events), first.c_str(),
           last.c_str(), Num(s.wall_seconds).c_str(), rps.c_str());
  }
  *out += "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::vector<std::string> train_logs;
  std::vector<std::string> profiles;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--train-log") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      train_logs.push_back(v);
    } else if (std::strcmp(arg, "--profile") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      profiles.push_back(v);
    } else if (std::strcmp(arg, "--out") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      out_path = v;
    } else if (arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) inputs.push_back("bench/out");

  std::vector<Manifest> manifests;
  for (const std::string& in : inputs) {
    if (!CollectManifests(in, &manifests)) return 2;
  }

  // Manifests record where their run streamed training events; fold those
  // logs in automatically (when present on disk) alongside the explicit
  // --train-log paths, deduplicating shared paths.
  for (const Manifest& m : manifests) {
    const JsonValue* tl = Find(m.root, "train_log");
    if (tl != nullptr && tl->kind == JsonValue::Kind::kString &&
        !tl->string.empty()) {
      std::error_code ec;
      if (fs::exists(tl->string, ec)) train_logs.push_back(tl->string);
    }
    const JsonValue* pp = Find(m.root, "profile_path");
    if (pp != nullptr && pp->kind == JsonValue::Kind::kString &&
        !pp->string.empty()) {
      std::error_code ec;
      if (fs::exists(pp->string, ec)) profiles.push_back(pp->string);
    }
  }
  std::sort(train_logs.begin(), train_logs.end());
  train_logs.erase(std::unique(train_logs.begin(), train_logs.end()),
                   train_logs.end());
  std::sort(profiles.begin(), profiles.end());
  profiles.erase(std::unique(profiles.begin(), profiles.end()),
                 profiles.end());
  std::map<std::string, TrainSummary> by_model;
  for (const std::string& path : train_logs) {
    if (!LoadTrainLog(path, &by_model)) return 2;
  }

  std::string md = "# LCE run report\n\n";
  Append(&md, "%d manifest%s", static_cast<int>(manifests.size()),
         manifests.size() == 1 ? "" : "s");
  if (!train_logs.empty()) {
    Append(&md, ", %d training log%s", static_cast<int>(train_logs.size()),
           train_logs.size() == 1 ? "" : "s");
  }
  md += ".\n\n";
  RenderRuns(manifests, &md);
  RenderModelCards(manifests, &md);
  RenderServing(manifests, &md);
  RenderStages(manifests, &md);
  RenderHistograms(manifests, &md);
  if (!RenderProfiles(profiles, &md)) return 2;
  RenderMemory(manifests, &md);
  RenderDrift(manifests, &md);
  RenderPostmortems(manifests, &md);
  RenderTraining(by_model, &md);

  std::fputs(md.c_str(), stdout);
  if (!out_path.empty()) {
    lce::Status written = lce::fs::WriteStringToFile(out_path, md);
    if (!written.ok()) {
      std::fprintf(stderr, "lce_report: %s\n", written.ToString().c_str());
      return 2;
    }
  }
  return 0;
}
