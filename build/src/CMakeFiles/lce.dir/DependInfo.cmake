
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ce/bounded.cpp" "src/CMakeFiles/lce.dir/ce/bounded.cpp.o" "gcc" "src/CMakeFiles/lce.dir/ce/bounded.cpp.o.d"
  "/root/repo/src/ce/data_driven/bayesnet.cpp" "src/CMakeFiles/lce.dir/ce/data_driven/bayesnet.cpp.o" "gcc" "src/CMakeFiles/lce.dir/ce/data_driven/bayesnet.cpp.o.d"
  "/root/repo/src/ce/data_driven/binning.cpp" "src/CMakeFiles/lce.dir/ce/data_driven/binning.cpp.o" "gcc" "src/CMakeFiles/lce.dir/ce/data_driven/binning.cpp.o.d"
  "/root/repo/src/ce/data_driven/naru.cpp" "src/CMakeFiles/lce.dir/ce/data_driven/naru.cpp.o" "gcc" "src/CMakeFiles/lce.dir/ce/data_driven/naru.cpp.o.d"
  "/root/repo/src/ce/data_driven/spn.cpp" "src/CMakeFiles/lce.dir/ce/data_driven/spn.cpp.o" "gcc" "src/CMakeFiles/lce.dir/ce/data_driven/spn.cpp.o.d"
  "/root/repo/src/ce/edge_selectivity.cpp" "src/CMakeFiles/lce.dir/ce/edge_selectivity.cpp.o" "gcc" "src/CMakeFiles/lce.dir/ce/edge_selectivity.cpp.o.d"
  "/root/repo/src/ce/factory.cpp" "src/CMakeFiles/lce.dir/ce/factory.cpp.o" "gcc" "src/CMakeFiles/lce.dir/ce/factory.cpp.o.d"
  "/root/repo/src/ce/query_driven/flat_models.cpp" "src/CMakeFiles/lce.dir/ce/query_driven/flat_models.cpp.o" "gcc" "src/CMakeFiles/lce.dir/ce/query_driven/flat_models.cpp.o.d"
  "/root/repo/src/ce/query_driven/lwxgb_model.cpp" "src/CMakeFiles/lce.dir/ce/query_driven/lwxgb_model.cpp.o" "gcc" "src/CMakeFiles/lce.dir/ce/query_driven/lwxgb_model.cpp.o.d"
  "/root/repo/src/ce/query_driven/neural_base.cpp" "src/CMakeFiles/lce.dir/ce/query_driven/neural_base.cpp.o" "gcc" "src/CMakeFiles/lce.dir/ce/query_driven/neural_base.cpp.o.d"
  "/root/repo/src/ce/query_driven/set_models.cpp" "src/CMakeFiles/lce.dir/ce/query_driven/set_models.cpp.o" "gcc" "src/CMakeFiles/lce.dir/ce/query_driven/set_models.cpp.o.d"
  "/root/repo/src/ce/traditional/histogram.cpp" "src/CMakeFiles/lce.dir/ce/traditional/histogram.cpp.o" "gcc" "src/CMakeFiles/lce.dir/ce/traditional/histogram.cpp.o.d"
  "/root/repo/src/ce/traditional/kde.cpp" "src/CMakeFiles/lce.dir/ce/traditional/kde.cpp.o" "gcc" "src/CMakeFiles/lce.dir/ce/traditional/kde.cpp.o.d"
  "/root/repo/src/ce/traditional/multidim_histogram.cpp" "src/CMakeFiles/lce.dir/ce/traditional/multidim_histogram.cpp.o" "gcc" "src/CMakeFiles/lce.dir/ce/traditional/multidim_histogram.cpp.o.d"
  "/root/repo/src/ce/traditional/sampling.cpp" "src/CMakeFiles/lce.dir/ce/traditional/sampling.cpp.o" "gcc" "src/CMakeFiles/lce.dir/ce/traditional/sampling.cpp.o.d"
  "/root/repo/src/ce/traditional/wander_join.cpp" "src/CMakeFiles/lce.dir/ce/traditional/wander_join.cpp.o" "gcc" "src/CMakeFiles/lce.dir/ce/traditional/wander_join.cpp.o.d"
  "/root/repo/src/eval/e2e.cpp" "src/CMakeFiles/lce.dir/eval/e2e.cpp.o" "gcc" "src/CMakeFiles/lce.dir/eval/e2e.cpp.o.d"
  "/root/repo/src/eval/metrics.cpp" "src/CMakeFiles/lce.dir/eval/metrics.cpp.o" "gcc" "src/CMakeFiles/lce.dir/eval/metrics.cpp.o.d"
  "/root/repo/src/exec/executor.cpp" "src/CMakeFiles/lce.dir/exec/executor.cpp.o" "gcc" "src/CMakeFiles/lce.dir/exec/executor.cpp.o.d"
  "/root/repo/src/exec/hash_index.cpp" "src/CMakeFiles/lce.dir/exec/hash_index.cpp.o" "gcc" "src/CMakeFiles/lce.dir/exec/hash_index.cpp.o.d"
  "/root/repo/src/exec/plan_executor.cpp" "src/CMakeFiles/lce.dir/exec/plan_executor.cpp.o" "gcc" "src/CMakeFiles/lce.dir/exec/plan_executor.cpp.o.d"
  "/root/repo/src/gbdt/gbdt.cpp" "src/CMakeFiles/lce.dir/gbdt/gbdt.cpp.o" "gcc" "src/CMakeFiles/lce.dir/gbdt/gbdt.cpp.o.d"
  "/root/repo/src/gbdt/tree.cpp" "src/CMakeFiles/lce.dir/gbdt/tree.cpp.o" "gcc" "src/CMakeFiles/lce.dir/gbdt/tree.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/lce.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/lce.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "src/CMakeFiles/lce.dir/nn/matrix.cpp.o" "gcc" "src/CMakeFiles/lce.dir/nn/matrix.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/CMakeFiles/lce.dir/nn/mlp.cpp.o" "gcc" "src/CMakeFiles/lce.dir/nn/mlp.cpp.o.d"
  "/root/repo/src/nn/recurrent.cpp" "src/CMakeFiles/lce.dir/nn/recurrent.cpp.o" "gcc" "src/CMakeFiles/lce.dir/nn/recurrent.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/lce.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/lce.dir/nn/serialize.cpp.o.d"
  "/root/repo/src/optimizer/planner.cpp" "src/CMakeFiles/lce.dir/optimizer/planner.cpp.o" "gcc" "src/CMakeFiles/lce.dir/optimizer/planner.cpp.o.d"
  "/root/repo/src/query/encoder.cpp" "src/CMakeFiles/lce.dir/query/encoder.cpp.o" "gcc" "src/CMakeFiles/lce.dir/query/encoder.cpp.o.d"
  "/root/repo/src/query/parser.cpp" "src/CMakeFiles/lce.dir/query/parser.cpp.o" "gcc" "src/CMakeFiles/lce.dir/query/parser.cpp.o.d"
  "/root/repo/src/query/query.cpp" "src/CMakeFiles/lce.dir/query/query.cpp.o" "gcc" "src/CMakeFiles/lce.dir/query/query.cpp.o.d"
  "/root/repo/src/storage/csv.cpp" "src/CMakeFiles/lce.dir/storage/csv.cpp.o" "gcc" "src/CMakeFiles/lce.dir/storage/csv.cpp.o.d"
  "/root/repo/src/storage/database.cpp" "src/CMakeFiles/lce.dir/storage/database.cpp.o" "gcc" "src/CMakeFiles/lce.dir/storage/database.cpp.o.d"
  "/root/repo/src/storage/datagen.cpp" "src/CMakeFiles/lce.dir/storage/datagen.cpp.o" "gcc" "src/CMakeFiles/lce.dir/storage/datagen.cpp.o.d"
  "/root/repo/src/storage/dictionary.cpp" "src/CMakeFiles/lce.dir/storage/dictionary.cpp.o" "gcc" "src/CMakeFiles/lce.dir/storage/dictionary.cpp.o.d"
  "/root/repo/src/storage/table.cpp" "src/CMakeFiles/lce.dir/storage/table.cpp.o" "gcc" "src/CMakeFiles/lce.dir/storage/table.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/lce.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/lce.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table_printer.cpp" "src/CMakeFiles/lce.dir/util/table_printer.cpp.o" "gcc" "src/CMakeFiles/lce.dir/util/table_printer.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/CMakeFiles/lce.dir/workload/generator.cpp.o" "gcc" "src/CMakeFiles/lce.dir/workload/generator.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/CMakeFiles/lce.dir/workload/trace.cpp.o" "gcc" "src/CMakeFiles/lce.dir/workload/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
