file(REMOVE_RECURSE
  "CMakeFiles/zoo_property_test.dir/zoo_property_test.cpp.o"
  "CMakeFiles/zoo_property_test.dir/zoo_property_test.cpp.o.d"
  "zoo_property_test"
  "zoo_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
