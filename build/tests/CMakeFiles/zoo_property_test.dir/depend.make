# Empty dependencies file for zoo_property_test.
# This may be replaced when dependencies are built.
