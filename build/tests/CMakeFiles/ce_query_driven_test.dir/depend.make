# Empty dependencies file for ce_query_driven_test.
# This may be replaced when dependencies are built.
