# Empty dependencies file for edge_selectivity_test.
# This may be replaced when dependencies are built.
