file(REMOVE_RECURSE
  "CMakeFiles/edge_selectivity_test.dir/edge_selectivity_test.cpp.o"
  "CMakeFiles/edge_selectivity_test.dir/edge_selectivity_test.cpp.o.d"
  "edge_selectivity_test"
  "edge_selectivity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_selectivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
