# Empty compiler generated dependencies file for ce_sampling_family_test.
# This may be replaced when dependencies are built.
