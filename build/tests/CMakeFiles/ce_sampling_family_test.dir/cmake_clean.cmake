file(REMOVE_RECURSE
  "CMakeFiles/ce_sampling_family_test.dir/ce_sampling_family_test.cpp.o"
  "CMakeFiles/ce_sampling_family_test.dir/ce_sampling_family_test.cpp.o.d"
  "ce_sampling_family_test"
  "ce_sampling_family_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ce_sampling_family_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
