# Empty dependencies file for ce_traditional_test.
# This may be replaced when dependencies are built.
