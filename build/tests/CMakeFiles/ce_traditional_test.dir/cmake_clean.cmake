file(REMOVE_RECURSE
  "CMakeFiles/ce_traditional_test.dir/ce_traditional_test.cpp.o"
  "CMakeFiles/ce_traditional_test.dir/ce_traditional_test.cpp.o.d"
  "ce_traditional_test"
  "ce_traditional_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ce_traditional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
