# Empty compiler generated dependencies file for ce_data_driven_test.
# This may be replaced when dependencies are built.
