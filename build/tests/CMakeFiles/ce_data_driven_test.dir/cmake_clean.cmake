file(REMOVE_RECURSE
  "CMakeFiles/ce_data_driven_test.dir/ce_data_driven_test.cpp.o"
  "CMakeFiles/ce_data_driven_test.dir/ce_data_driven_test.cpp.o.d"
  "ce_data_driven_test"
  "ce_data_driven_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ce_data_driven_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
