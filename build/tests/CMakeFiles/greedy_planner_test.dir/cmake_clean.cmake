file(REMOVE_RECURSE
  "CMakeFiles/greedy_planner_test.dir/greedy_planner_test.cpp.o"
  "CMakeFiles/greedy_planner_test.dir/greedy_planner_test.cpp.o.d"
  "greedy_planner_test"
  "greedy_planner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
