file(REMOVE_RECURSE
  "CMakeFiles/optimizer_impact.dir/optimizer_impact.cpp.o"
  "CMakeFiles/optimizer_impact.dir/optimizer_impact.cpp.o.d"
  "optimizer_impact"
  "optimizer_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
