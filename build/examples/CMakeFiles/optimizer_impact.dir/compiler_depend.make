# Empty compiler generated dependencies file for optimizer_impact.
# This may be replaced when dependencies are built.
