# Empty dependencies file for drift_and_updates.
# This may be replaced when dependencies are built.
