file(REMOVE_RECURSE
  "CMakeFiles/drift_and_updates.dir/drift_and_updates.cpp.o"
  "CMakeFiles/drift_and_updates.dir/drift_and_updates.cpp.o.d"
  "drift_and_updates"
  "drift_and_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_and_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
