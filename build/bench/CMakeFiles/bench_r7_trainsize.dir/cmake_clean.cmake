file(REMOVE_RECURSE
  "CMakeFiles/bench_r7_trainsize.dir/bench_r7_trainsize.cpp.o"
  "CMakeFiles/bench_r7_trainsize.dir/bench_r7_trainsize.cpp.o.d"
  "bench_r7_trainsize"
  "bench_r7_trainsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r7_trainsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
