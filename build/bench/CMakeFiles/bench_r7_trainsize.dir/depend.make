# Empty dependencies file for bench_r7_trainsize.
# This may be replaced when dependencies are built.
