file(REMOVE_RECURSE
  "CMakeFiles/bench_r19_join_handling.dir/bench_r19_join_handling.cpp.o"
  "CMakeFiles/bench_r19_join_handling.dir/bench_r19_join_handling.cpp.o.d"
  "bench_r19_join_handling"
  "bench_r19_join_handling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r19_join_handling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
