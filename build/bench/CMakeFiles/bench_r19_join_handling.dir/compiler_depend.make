# Empty compiler generated dependencies file for bench_r19_join_handling.
# This may be replaced when dependencies are built.
