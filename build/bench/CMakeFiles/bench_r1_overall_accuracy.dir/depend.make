# Empty dependencies file for bench_r1_overall_accuracy.
# This may be replaced when dependencies are built.
