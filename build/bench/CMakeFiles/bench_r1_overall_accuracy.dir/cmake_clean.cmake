file(REMOVE_RECURSE
  "CMakeFiles/bench_r1_overall_accuracy.dir/bench_r1_overall_accuracy.cpp.o"
  "CMakeFiles/bench_r1_overall_accuracy.dir/bench_r1_overall_accuracy.cpp.o.d"
  "bench_r1_overall_accuracy"
  "bench_r1_overall_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r1_overall_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
