file(REMOVE_RECURSE
  "CMakeFiles/bench_r11_loss.dir/bench_r11_loss.cpp.o"
  "CMakeFiles/bench_r11_loss.dir/bench_r11_loss.cpp.o.d"
  "bench_r11_loss"
  "bench_r11_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r11_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
