file(REMOVE_RECURSE
  "CMakeFiles/bench_r4_correlation.dir/bench_r4_correlation.cpp.o"
  "CMakeFiles/bench_r4_correlation.dir/bench_r4_correlation.cpp.o.d"
  "bench_r4_correlation"
  "bench_r4_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r4_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
