# Empty compiler generated dependencies file for bench_r12_encoding.
# This may be replaced when dependencies are built.
