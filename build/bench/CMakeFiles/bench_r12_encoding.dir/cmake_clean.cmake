file(REMOVE_RECURSE
  "CMakeFiles/bench_r12_encoding.dir/bench_r12_encoding.cpp.o"
  "CMakeFiles/bench_r12_encoding.dir/bench_r12_encoding.cpp.o.d"
  "bench_r12_encoding"
  "bench_r12_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r12_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
