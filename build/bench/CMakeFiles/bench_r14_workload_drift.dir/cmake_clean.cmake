file(REMOVE_RECURSE
  "CMakeFiles/bench_r14_workload_drift.dir/bench_r14_workload_drift.cpp.o"
  "CMakeFiles/bench_r14_workload_drift.dir/bench_r14_workload_drift.cpp.o.d"
  "bench_r14_workload_drift"
  "bench_r14_workload_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r14_workload_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
