# Empty compiler generated dependencies file for bench_r14_workload_drift.
# This may be replaced when dependencies are built.
