file(REMOVE_RECURSE
  "CMakeFiles/bench_r6_domain.dir/bench_r6_domain.cpp.o"
  "CMakeFiles/bench_r6_domain.dir/bench_r6_domain.cpp.o.d"
  "bench_r6_domain"
  "bench_r6_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r6_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
