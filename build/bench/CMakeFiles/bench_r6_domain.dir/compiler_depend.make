# Empty compiler generated dependencies file for bench_r6_domain.
# This may be replaced when dependencies are built.
