file(REMOVE_RECURSE
  "CMakeFiles/bench_r16_mscn_samples.dir/bench_r16_mscn_samples.cpp.o"
  "CMakeFiles/bench_r16_mscn_samples.dir/bench_r16_mscn_samples.cpp.o.d"
  "bench_r16_mscn_samples"
  "bench_r16_mscn_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r16_mscn_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
