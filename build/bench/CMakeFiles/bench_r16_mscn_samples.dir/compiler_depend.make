# Empty compiler generated dependencies file for bench_r16_mscn_samples.
# This may be replaced when dependencies are built.
