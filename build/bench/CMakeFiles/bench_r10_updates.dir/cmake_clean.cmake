file(REMOVE_RECURSE
  "CMakeFiles/bench_r10_updates.dir/bench_r10_updates.cpp.o"
  "CMakeFiles/bench_r10_updates.dir/bench_r10_updates.cpp.o.d"
  "bench_r10_updates"
  "bench_r10_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r10_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
