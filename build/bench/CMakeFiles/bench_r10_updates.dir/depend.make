# Empty dependencies file for bench_r10_updates.
# This may be replaced when dependencies are built.
