file(REMOVE_RECURSE
  "CMakeFiles/bench_r3_joins.dir/bench_r3_joins.cpp.o"
  "CMakeFiles/bench_r3_joins.dir/bench_r3_joins.cpp.o.d"
  "bench_r3_joins"
  "bench_r3_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r3_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
