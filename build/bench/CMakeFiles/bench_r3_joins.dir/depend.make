# Empty dependencies file for bench_r3_joins.
# This may be replaced when dependencies are built.
