# Empty dependencies file for bench_r15_planner_ablation.
# This may be replaced when dependencies are built.
