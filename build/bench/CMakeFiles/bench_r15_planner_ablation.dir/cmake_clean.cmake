file(REMOVE_RECURSE
  "CMakeFiles/bench_r15_planner_ablation.dir/bench_r15_planner_ablation.cpp.o"
  "CMakeFiles/bench_r15_planner_ablation.dir/bench_r15_planner_ablation.cpp.o.d"
  "bench_r15_planner_ablation"
  "bench_r15_planner_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r15_planner_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
