file(REMOVE_RECURSE
  "CMakeFiles/bench_r17_executed_e2e.dir/bench_r17_executed_e2e.cpp.o"
  "CMakeFiles/bench_r17_executed_e2e.dir/bench_r17_executed_e2e.cpp.o.d"
  "bench_r17_executed_e2e"
  "bench_r17_executed_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r17_executed_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
