# Empty compiler generated dependencies file for bench_r17_executed_e2e.
# This may be replaced when dependencies are built.
