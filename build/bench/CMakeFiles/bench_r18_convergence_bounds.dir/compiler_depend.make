# Empty compiler generated dependencies file for bench_r18_convergence_bounds.
# This may be replaced when dependencies are built.
