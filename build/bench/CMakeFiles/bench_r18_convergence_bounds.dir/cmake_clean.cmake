file(REMOVE_RECURSE
  "CMakeFiles/bench_r18_convergence_bounds.dir/bench_r18_convergence_bounds.cpp.o"
  "CMakeFiles/bench_r18_convergence_bounds.dir/bench_r18_convergence_bounds.cpp.o.d"
  "bench_r18_convergence_bounds"
  "bench_r18_convergence_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r18_convergence_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
