# Empty compiler generated dependencies file for bench_r8_generalization.
# This may be replaced when dependencies are built.
