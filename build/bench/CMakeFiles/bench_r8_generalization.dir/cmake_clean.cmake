file(REMOVE_RECURSE
  "CMakeFiles/bench_r8_generalization.dir/bench_r8_generalization.cpp.o"
  "CMakeFiles/bench_r8_generalization.dir/bench_r8_generalization.cpp.o.d"
  "bench_r8_generalization"
  "bench_r8_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r8_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
