file(REMOVE_RECURSE
  "CMakeFiles/bench_r13_variance.dir/bench_r13_variance.cpp.o"
  "CMakeFiles/bench_r13_variance.dir/bench_r13_variance.cpp.o.d"
  "bench_r13_variance"
  "bench_r13_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r13_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
