# Empty dependencies file for bench_r2_costs.
# This may be replaced when dependencies are built.
