file(REMOVE_RECURSE
  "CMakeFiles/bench_r2_costs.dir/bench_r2_costs.cpp.o"
  "CMakeFiles/bench_r2_costs.dir/bench_r2_costs.cpp.o.d"
  "bench_r2_costs"
  "bench_r2_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r2_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
