file(REMOVE_RECURSE
  "CMakeFiles/bench_r5_skew.dir/bench_r5_skew.cpp.o"
  "CMakeFiles/bench_r5_skew.dir/bench_r5_skew.cpp.o.d"
  "bench_r5_skew"
  "bench_r5_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r5_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
