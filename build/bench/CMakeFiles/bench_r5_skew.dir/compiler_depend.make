# Empty compiler generated dependencies file for bench_r5_skew.
# This may be replaced when dependencies are built.
